"""Per-worker ADMM penalty parameter policies.

The paper adapts the penalty ``rho_i`` with Spectral Penalty Selection (SPS),
the adaptive-consensus-ADMM scheme of Xu et al. (2016, 2017), and cites
Residual Balancing (He et al., 2000) as the common alternative it improves
upon.  All three are provided; policies are stateful and instantiated *per
worker* so each node adapts its own penalty locally, exactly as in
Algorithm 2 step 8 ("Locally, on each node, compute spectral step sizes and
penalty parameters").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.backend import copy_array, vdot, vector_norm
from repro.utils.validation import check_positive


@dataclass
class PenaltyObservation:
    """Quantities a penalty policy may look at after one ADMM iteration.

    All vectors are the *current worker's*; ``iteration`` is the (1-based)
    ADMM iteration that just completed.
    """

    iteration: int
    x_new: np.ndarray
    z_new: np.ndarray
    z_old: np.ndarray
    y_new: np.ndarray
    y_old: np.ndarray
    y_hat: np.ndarray
    rho: float
    primal_residual: float
    dual_residual: float


class PenaltyPolicy(ABC):
    """Interface: produce the next ``rho_i`` from the latest observation."""

    def __init__(self, rho0: float = 1.0):
        self.rho0 = check_positive(rho0, name="rho0")

    def initial_rho(self) -> float:
        return self.rho0

    @abstractmethod
    def update(self, obs: PenaltyObservation) -> float:
        """Return the penalty to use for the next iteration."""


class FixedPenalty(PenaltyPolicy):
    """Constant penalty (vanilla consensus ADMM)."""

    def update(self, obs: PenaltyObservation) -> float:
        return obs.rho


class ResidualBalancing(PenaltyPolicy):
    """He et al. (2000): grow/shrink rho to keep primal and dual residuals close.

    Parameters
    ----------
    mu:
        Imbalance threshold (default 10).
    tau:
        Multiplicative adjustment factor (default 2).
    rho_min, rho_max:
        Safeguard bounds.
    """

    def __init__(
        self,
        rho0: float = 1.0,
        *,
        mu: float = 10.0,
        tau: float = 2.0,
        rho_min: float = 1e-6,
        rho_max: float = 1e6,
    ):
        super().__init__(rho0)
        self.mu = check_positive(mu, name="mu")
        self.tau = check_positive(tau, name="tau")
        self.rho_min = check_positive(rho_min, name="rho_min")
        self.rho_max = check_positive(rho_max, name="rho_max")
        if self.rho_min > self.rho_max:
            raise ValueError("rho_min must not exceed rho_max")

    def update(self, obs: PenaltyObservation) -> float:
        rho = obs.rho
        if obs.primal_residual > self.mu * obs.dual_residual:
            rho = rho * self.tau
        elif obs.dual_residual > self.mu * obs.primal_residual:
            rho = rho / self.tau
        return float(np.clip(rho, self.rho_min, self.rho_max))


class SpectralPenalty(PenaltyPolicy):
    """Spectral Penalty Selection (adaptive consensus ADMM, Xu et al. 2017).

    The worker estimates the local curvature of its subproblem and of the
    consensus term with Barzilai-Borwein-style spectral step sizes built from
    differences of its primal/dual iterates, then sets
    ``rho = sqrt(alpha * beta)`` when both estimates are trustworthy
    (correlation above ``eps_corr``), falls back to whichever single estimate
    is trustworthy, and keeps the previous penalty otherwise.

    Parameters
    ----------
    update_period:
        Re-estimate every ``update_period`` iterations (Xu et al. use 2).
    eps_corr:
        Correlation safeguard threshold (0.2 in the reference implementation).
    memory:
        How many iterations back the finite differences reach (equal to
        ``update_period`` in the reference implementation).
    rho_min, rho_max:
        Safeguard bounds on the penalty.
    """

    def __init__(
        self,
        rho0: float = 1.0,
        *,
        update_period: int = 2,
        eps_corr: float = 0.2,
        rho_min: float = 1e-6,
        rho_max: float = 1e6,
    ):
        super().__init__(rho0)
        if update_period < 1:
            raise ValueError(f"update_period must be >= 1, got {update_period}")
        self.update_period = int(update_period)
        self.eps_corr = check_positive(eps_corr, name="eps_corr")
        self.rho_min = check_positive(rho_min, name="rho_min")
        self.rho_max = check_positive(rho_max, name="rho_max")
        # Snapshot of (x, y_hat, z, y) at the last estimation point.
        self._x_old: Optional[np.ndarray] = None
        self._yhat_old: Optional[np.ndarray] = None
        self._z_old: Optional[np.ndarray] = None
        self._y_old: Optional[np.ndarray] = None

    # -- spectral helpers -------------------------------------------------
    @staticmethod
    def _spectral_estimate(du: np.ndarray, dv: np.ndarray) -> tuple[float, float]:
        """Return (steepest-descent, minimum-gradient) curvature estimates.

        ``du`` is the change in the primal-like variable, ``dv`` the change in
        the dual-like variable; the estimates are the standard BB step sizes
        ``<dv, dv>/<du, dv>`` and ``<du, dv>/<du, du>``.
        """
        uv = vdot(du, dv)
        vv = vdot(dv, dv)
        uu = vdot(du, du)
        if uv <= 0 or uu <= 0 or vv <= 0:
            return 0.0, 0.0
        return vv / uv, uv / uu

    @staticmethod
    def _safeguarded(sd: float, mg: float) -> float:
        """Combine the two BB estimates as in Xu et al. (hybrid rule)."""
        if sd <= 0 or mg <= 0:
            return 0.0
        if 2.0 * mg > sd:
            return mg
        return sd - 0.5 * mg

    @staticmethod
    def _correlation(du: np.ndarray, dv: np.ndarray) -> float:
        nu = vector_norm(du)
        nv = vector_norm(dv)
        if nu <= 0 or nv <= 0:
            return 0.0
        return vdot(du, dv) / (nu * nv)

    # -- policy ------------------------------------------------------------
    def _remember(self, obs: PenaltyObservation) -> None:
        self._x_old = copy_array(obs.x_new)
        self._yhat_old = copy_array(obs.y_hat)
        self._z_old = copy_array(obs.z_new)
        self._y_old = copy_array(obs.y_new)

    def update(self, obs: PenaltyObservation) -> float:
        if obs.iteration % self.update_period != 0:
            return obs.rho
        if self._x_old is None:
            # First estimation point: just take the snapshot.
            self._remember(obs)
            return obs.rho

        dx = obs.x_new - self._x_old
        dyhat = obs.y_hat - self._yhat_old
        dz = obs.z_new - self._z_old
        dy = obs.y_new - self._y_old

        alpha_sd, alpha_mg = self._spectral_estimate(dx, dyhat)
        beta_sd, beta_mg = self._spectral_estimate(dz, dy)
        alpha = self._safeguarded(alpha_sd, alpha_mg)
        beta = self._safeguarded(beta_sd, beta_mg)
        alpha_ok = self._correlation(dx, dyhat) > self.eps_corr and alpha > 0
        beta_ok = self._correlation(dz, dy) > self.eps_corr and beta > 0

        if alpha_ok and beta_ok:
            rho = float(np.sqrt(alpha * beta))
        elif alpha_ok:
            rho = float(alpha)
        elif beta_ok:
            rho = float(beta)
        else:
            rho = obs.rho

        self._remember(obs)
        return float(np.clip(rho, self.rho_min, self.rho_max))


PolicyFactory = Callable[[], PenaltyPolicy]


def make_penalty_policy(name: str, rho0: float = 1.0, **kwargs) -> PolicyFactory:
    """Return a factory producing fresh per-worker penalty policies.

    Parameters
    ----------
    name:
        ``"spectral"``, ``"residual_balancing"`` or ``"fixed"``.
    rho0:
        Initial penalty.
    kwargs:
        Forwarded to the policy constructor.
    """
    name = name.lower()
    if name in ("spectral", "sps", "acadmm"):
        return lambda: SpectralPenalty(rho0, **kwargs)
    if name in ("residual_balancing", "residual", "rb"):
        return lambda: ResidualBalancing(rho0, **kwargs)
    if name in ("fixed", "constant"):
        return lambda: FixedPenalty(rho0, **kwargs)
    raise ValueError(
        f"unknown penalty policy {name!r}; expected 'spectral', "
        "'residual_balancing' or 'fixed'"
    )
