"""Newton-ADMM (Algorithm 2 of the paper).

Outer loop per iteration ``k``:

1. **Local x-update** — every worker minimizes its augmented local objective
   ``f_i(x) + (rho_i/2) ||x - (z^k + y_i^k / rho_i)||^2`` with a few inexact
   Newton-CG steps (Algorithm 1), warm-started from its previous ``x_i``.
2. **Single communication round** — the master combines the per-worker vectors
   ``rho_i x_i^{k+1} - y_i^k``, forms the closed-form consensus update
   ``z^{k+1}`` (eq. 7), and sends it back.  Because the z-update only needs the
   *sum* of the per-worker payloads (and the sum of the penalties), the
   gather/scatter pair of Remark 1 is executed as a reduction tree plus a
   broadcast — ``O(log N)`` time with constant per-link volume — and is
   accounted as *one* communication round.
3. **Local dual / penalty update** — every worker updates
   ``y_i^{k+1} = y_i^k + rho_i (z^{k+1} - x_i^{k+1})`` and adapts its penalty
   with the configured policy (Spectral Penalty Selection by default).

The reported global iterate is the consensus variable ``z``.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.admm.penalty import PenaltyObservation, PolicyFactory, make_penalty_policy
from repro.backend import copy_array
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.schedule import RoundPlan
from repro.distributed.solver_base import DistributedSolver
from repro.distributed.worker import Worker
from repro.objectives.base import ProximallyAugmentedObjective
from repro.solvers.newton_cg import NewtonCG


class NewtonADMM(DistributedSolver):
    """Distributed Newton-ADMM solver.

    Parameters
    ----------
    lam:
        L2 regularization strength of the global objective.
    max_epochs:
        Number of ADMM (outer) iterations.
    rho0:
        Initial per-worker penalty.  ``None`` (default) selects
        ``1 / n_total`` at fit time, which matches a unit penalty on the
        paper's *sum*-form objective (eq. 1) under this library's mean-loss
        scaling.
    penalty:
        ``"spectral"`` (default, SPS), ``"residual_balancing"``, ``"fixed"``,
        or a callable returning fresh :class:`PenaltyPolicy` instances.
    local_newton_iters:
        Inexact Newton steps taken per worker per ADMM iteration.
    cg_max_iter, cg_tol:
        Inner CG budget / relative tolerance (paper: 10 iterations, 1e-4).
    cg_tol_decay:
        Multiplier applied to the CG tolerance every ADMM iteration
        (``1.0`` = constant, the paper's setting).  Values below 1 make the
        local subproblems progressively more exact, the classical inexact-ADMM
        accuracy schedule.
    line_search_max_iter:
        Armijo backtracking budget (paper: 10); the search runs locally and
        stops early, unlike GIANT's distributed line search.
    over_relaxation:
        ADMM over-relaxation factor ``alpha`` in ``[1, 2)``: the z- and dual
        updates use ``alpha * x_i + (1 - alpha) * z_k`` instead of ``x_i``.
        ``1.0`` (the paper's setting) disables it; 1.5-1.8 is the range Boyd
        et al. recommend.
    stop_abs_tol, stop_rel_tol:
        Boyd-style absolute/relative tolerances on the primal and dual
        residuals; when both are positive the solver stops as soon as both
        residuals fall below their thresholds (before ``max_epochs``).
    cg_block:
        Route the local Newton-CG solves through the block-CG entry point
        (no effect on iterates — each subproblem has one right-hand side).
    precision:
        ``"mixed"`` accumulates the local CG reduction scalars in float64;
        ``None`` follows the session default (:mod:`repro.backend.precision`).
    on_failure:
        Reaction of the strict-sync schedule to an injected worker crash:
        ``"raise"`` (default, a :class:`~repro.distributed.faults.WorkerLostError`)
        or ``"stall"`` (wait for the restart).  The quorum-based
        :class:`~repro.admm.async_newton_admm.AsyncNewtonADMM` rides through
        crashes instead.
    """

    name = "newton_admm"

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 100,
        rho0: Optional[float] = None,
        penalty: Union[str, PolicyFactory] = "spectral",
        local_newton_iters: int = 1,
        cg_max_iter: int = 10,
        cg_tol: float = 1e-4,
        cg_tol_decay: float = 1.0,
        line_search_max_iter: int = 10,
        over_relaxation: float = 1.0,
        stop_abs_tol: float = 0.0,
        stop_rel_tol: float = 0.0,
        cg_block: bool = False,
        precision: Optional[str] = None,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
        on_failure: str = "raise",
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
            on_failure=on_failure,
        )
        if local_newton_iters < 1:
            raise ValueError(
                f"local_newton_iters must be >= 1, got {local_newton_iters}"
            )
        if rho0 is not None and rho0 <= 0:
            raise ValueError(f"rho0 must be positive, got {rho0}")
        if not 0.0 < cg_tol_decay <= 1.0:
            raise ValueError(f"cg_tol_decay must lie in (0, 1], got {cg_tol_decay}")
        if not 1.0 <= over_relaxation < 2.0:
            raise ValueError(
                f"over_relaxation must lie in [1, 2), got {over_relaxation}"
            )
        if stop_abs_tol < 0 or stop_rel_tol < 0:
            raise ValueError("stop_abs_tol and stop_rel_tol must be non-negative")
        self.rho0 = None if rho0 is None else float(rho0)
        self.local_newton_iters = int(local_newton_iters)
        self.cg_max_iter = int(cg_max_iter)
        self.cg_tol = float(cg_tol)
        self.cg_tol_decay = float(cg_tol_decay)
        self.line_search_max_iter = int(line_search_max_iter)
        self.over_relaxation = float(over_relaxation)
        self.stop_abs_tol = float(stop_abs_tol)
        self.stop_rel_tol = float(stop_rel_tol)
        self.cg_block = bool(cg_block)
        self.precision = precision
        if callable(penalty):
            self._custom_policy_factory: Optional[PolicyFactory] = penalty
            self.penalty = getattr(penalty, "__name__", "custom")
        else:
            self._custom_policy_factory = None
            self.penalty = penalty
        self._z: Optional[np.ndarray] = None
        self._last_extras: Dict[str, float] = {}

    # -- hooks ---------------------------------------------------------------
    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        backend = cluster.backend
        w0 = backend.as_vector(w0, cluster.dim, name="w0")
        self._z = copy_array(w0)
        self._last_extras = {}
        # Auto rho0: a unit penalty in the paper's sum-form objective equals
        # 1/n_total under this library's mean-loss scaling.
        rho0 = self.rho0 if self.rho0 is not None else 1.0 / cluster.n_total
        if self._custom_policy_factory is not None:
            policy_factory: PolicyFactory = self._custom_policy_factory
            rho0 = policy_factory().initial_rho()
        else:
            policy_factory = make_penalty_policy(self.penalty, rho0=rho0)
        for worker in cluster.workers:
            worker.set_vector("x", w0)
            worker.set_vector(
                "y", backend.zeros(cluster.dim, dtype=getattr(w0, "dtype", None))
            )
            worker.state["rho"] = rho0
            worker.state["policy"] = policy_factory()

    def _make_local_solver(self, epoch: int = 1) -> NewtonCG:
        cg_tol = max(self.cg_tol * self.cg_tol_decay ** (epoch - 1), 1e-14)
        return NewtonCG(
            max_iterations=self.local_newton_iters,
            grad_tol=1e-10,
            cg_max_iter=self.cg_max_iter,
            cg_tol=cg_tol,
            line_search_max_iter=self.line_search_max_iter,
            cg_block=self.cg_block,
            precision=self.precision,
        )

    def _plan_epoch(self, cluster: SimulatedCluster, epoch: int) -> RoundPlan:
        z_old = self._z
        if z_old is None:
            raise RuntimeError("NewtonADMM epoch requested before _initialize")
        alpha = self.over_relaxation
        backend = cluster.backend

        # ---- 1. local x-updates (parallel across workers) -------------------
        def local_x_update(worker: Worker, ctx: dict) -> dict:
            x = worker.get_vector("x")
            y = worker.get_vector("y")
            rho = float(worker.state["rho"])
            center = z_old + y / rho
            subproblem = ProximallyAugmentedObjective(worker.objective, rho, center)
            result = self._make_local_solver(epoch).minimize(subproblem, x)
            x_new = result.w
            # Over-relaxed iterate used by the z- and dual updates (alpha = 1
            # reduces to the plain iterate).
            x_relaxed = x_new if alpha == 1.0 else alpha * x_new + (1.0 - alpha) * z_old
            # Intermediate ("hat") dual used by the spectral policy: the dual
            # that would result from the *old* consensus variable.
            y_hat = y + rho * (z_old - x_relaxed)
            worker.set_vector("x", x_new)
            worker.set_vector("x_relaxed", x_relaxed)
            worker.set_vector("y_hat", y_hat)
            return {
                "payload": rho * x_relaxed - y,
                "rho": rho,
                "newton_iters": result.n_iterations,
                "cg_iters": result.info.get("total_cg_iterations", 0),
            }

        # ---- 2. one communication round: reduce -> z-update -> broadcast ----
        # Only the sums of the payloads and of the penalties are needed for
        # eq. (7), so they travel through a reduction tree (allreduce = reduce
        # + broadcast); the tiny penalty-sum reduction shares the same round
        # (``joint_with_previous``) — the single synchronization point the
        # plan declares below.
        def z_update(ctx: dict) -> np.ndarray:
            return ctx["payload_sum"] / (self.lam + ctx["rho_sum"])

        # ---- 3. local dual + penalty updates ---------------------------------
        def local_dual_update(worker: Worker, ctx: dict) -> dict:
            z_new = ctx["z"]
            x_new = worker.get_vector("x_relaxed")
            y = worker.get_vector("y")
            y_hat = worker.get_vector("y_hat")
            rho = float(worker.state["rho"])
            y_new = y + rho * (z_new - x_new)
            primal_res = backend.norm(x_new - z_new)
            dual_res = rho * backend.norm(z_new - z_old)
            obs = PenaltyObservation(
                iteration=epoch,
                x_new=x_new,
                z_new=z_new,
                z_old=z_old,
                y_new=y_new,
                y_old=y,
                y_hat=y_hat,
                rho=rho,
                primal_residual=primal_res,
                dual_residual=dual_res,
            )
            new_rho = float(worker.state["policy"].update(obs))
            worker.set_vector("y", y_new)
            worker.state["rho"] = new_rho
            # Dual update + residuals are a handful of AXPYs / norms.
            worker.objective.add_flops(10.0 * worker.dim)
            return {
                "primal": primal_res**2,
                "dual": dual_res**2,
                "rho": new_rho,
                "x_norm_sq": backend.dot(x_new, x_new),
                "y_norm_sq": backend.dot(y_new, y_new),
            }

        def finalize(ctx: dict) -> None:
            local_results = ctx["x_update"]
            dual_results = ctx["dual"]
            z_new = ctx["z"]
            primal_residual = float(np.sqrt(sum(r["primal"] for r in dual_results)))
            dual_residual = float(np.sqrt(sum(r["dual"] for r in dual_results)))
            self._z = z_new
            self._last_extras = {
                "primal_residual": primal_residual,
                "dual_residual": dual_residual,
                "mean_rho": float(np.mean([r["rho"] for r in dual_results])),
                "local_newton_iters": float(
                    np.mean([r["newton_iters"] for r in local_results])
                ),
                "local_cg_iters": float(
                    np.mean([r["cg_iters"] for r in local_results])
                ),
            }

            # ---- 4. optional Boyd-style residual stopping ---------------------
            if self.stop_abs_tol > 0 and self.stop_rel_tol > 0:
                n_workers = cluster.n_workers
                dim = cluster.dim
                x_norm = float(np.sqrt(sum(r["x_norm_sq"] for r in dual_results)))
                y_norm = float(np.sqrt(sum(r["y_norm_sq"] for r in dual_results)))
                z_norm = float(np.sqrt(n_workers)) * backend.norm(z_new)
                primal_tol = (
                    np.sqrt(n_workers * dim) * self.stop_abs_tol
                    + self.stop_rel_tol * max(x_norm, z_norm)
                )
                dual_tol = (
                    np.sqrt(n_workers * dim) * self.stop_abs_tol
                    + self.stop_rel_tol * y_norm
                )
                if primal_residual <= primal_tol and dual_residual <= dual_tol:
                    self._stop_requested = True

        plan = RoundPlan("newton_admm")
        plan.local(
            "x_update",
            local_x_update,
            label="x-update",
            effects={
                "reads": ["worker:x", "worker:y", "worker:rho"],
                "writes": ["worker:x", "worker:x_relaxed", "worker:y_hat"],
            },
        )
        plan.allreduce(
            "payload_sum",
            lambda ctx: [r["payload"] for r in ctx["x_update"]],
            effects={"reads": ["x_update"]},
        )
        plan.reduce_scalar(
            "rho_sum",
            lambda ctx: [r["rho"] for r in ctx["x_update"]],
            joint_with_previous=True,
            effects={"reads": ["x_update"]},
        )
        plan.master(z_update, name="z", effects={"reads": ["payload_sum", "rho_sum"]})
        plan.local(
            "dual",
            local_dual_update,
            label="dual-update",
            effects={
                "reads": [
                    "z",
                    "worker:x_relaxed",
                    "worker:y",
                    "worker:y_hat",
                    "worker:rho",
                    "worker:policy",
                ],
                "writes": ["worker:y", "worker:rho"],
            },
        )
        plan.master(finalize, effects={"reads": ["x_update", "dual", "z"]})
        plan.returns("z")
        return plan

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        return dict(self._last_extras)
