"""AIDE — Accelerated Inexact DanE (Reddi et al., 2016).

AIDE wraps InexactDANE in Catalyst-style acceleration: each outer iteration
solves the ``tau``-augmented problem ``F(x) + (tau/2) ||x - y_acc||^2`` with
one InexactDANE step, then extrapolates the prox center

    ``y_acc <- x_new + beta * (x_new - x_old)``

with the usual momentum coefficient built from ``q = lam / (lam + tau)``.
The paper tunes ``tau`` on a log grid; it is a constructor parameter here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.dane import InexactDANE
from repro.distributed.cluster import SimulatedCluster


class AIDE(InexactDANE):
    """Catalyst-accelerated InexactDANE.

    Parameters
    ----------
    tau:
        Catalyst augmentation strength (the paper sweeps 1e-4..1e4).
    Remaining parameters are inherited from :class:`InexactDANE`.
    """

    name = "aide"

    def __init__(self, *, tau: float = 1.0, **kwargs):
        super().__init__(**kwargs)
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        self.tau = float(tau)
        self._y_acc: Optional[np.ndarray] = None
        self._w_prev: Optional[np.ndarray] = None

    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        super()._initialize(cluster, w0)
        self._y_acc = w0.copy()
        self._w_prev = w0.copy()

    def _momentum(self) -> float:
        """Catalyst momentum from the strong-convexity ratio q = lam/(lam+tau)."""
        if self.tau == 0:
            return 0.0
        q = self.lam / (self.lam + self.tau)
        sqrt_q = np.sqrt(q)
        return float((1.0 - sqrt_q) / (1.0 + sqrt_q))

    def _plan_epoch(self, cluster: SimulatedCluster, epoch: int):
        if self._w is None or self._y_acc is None or self._w_prev is None:
            raise RuntimeError("AIDE epoch requested before _initialize")
        plan = self._dane_plan(
            cluster, self._w, extra_mu=self.tau, prox_center=self._y_acc
        )

        def commit(ctx: dict) -> np.ndarray:
            w_new = ctx["averaged"]
            beta = self._momentum()
            self._y_acc = w_new + beta * (w_new - self._w_prev)
            self._w_prev = self._w
            self._w = w_new
            self._last_extras["momentum"] = beta
            return self._w

        plan.master(commit, name="w", effects={"reads": ["averaged"]})
        plan.returns("w")
        return plan
