"""Asynchronous parameter-server SGD, run on the discrete-event engine.

The paper's first-order comparison (§3, "Newton-ADMM outperforms
state-of-the-art distributed First-order methods") notes that asynchronous
SGD "weakens the rate of convergence due to the updates of older gradients to
global weight" and therefore compares only against synchronous SGD.  This
baseline implements the asynchronous variant so that claim can be reproduced
rather than assumed.

Unlike the original closed-form model (which *assumed* a steady-state
staleness of ``N - 1`` and a per-update time formula), the schedule is now
simulated event by event on the cluster's
:class:`~repro.distributed.engine.EventEngine`:

* every worker cycles pull → compute → push on its own timeline (persistent
  stragglers and jitter stretch individual cycles via the cluster's
  :class:`~repro.distributed.stragglers.StragglerModel`, keyed by worker id);
* pushed gradients travel as in-flight events and the server applies them in
  arrival order, serializing its receive+send handling;
* the *staleness of every update is measured* — the number of server steps
  between the weights a gradient was computed at and the weights it is
  applied to — and recorded per update in :attr:`staleness_log`.

Passing an explicit ``staleness=k`` switches to the forced-staleness mode
(the gradient for step ``t`` is evaluated at the weights of step ``t - k``)
so ablations can isolate the staleness effect; the timing still comes from
the simulated schedule.

Under an injected :class:`~repro.distributed.faults.FailureModel` the
parameter-server schedule rides through worker loss naturally: a crashed
worker's in-flight gradient is dropped, the server keeps applying the
survivors' updates, and a restarted worker pulls fresh weights and resumes
cycling.  Only the loss of *every* worker with no scheduled restart raises
:class:`~repro.distributed.faults.WorkerLostError`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.backend import copy_array
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.comm import _nbytes
from repro.distributed.faults import (
    crash_guard,
    crashed_at_start,
    partition_transfer_guard,
    pop_next_arrival,
)
from repro.distributed.solver_base import DistributedSolver
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.utils.rng import check_random_state


class AsynchronousSGD(DistributedSolver):
    """Parameter-server SGD with stale gradient updates.

    Parameters
    ----------
    step_size:
        Learning rate.
    batch_size:
        Per-worker mini-batch size (paper's synchronous baseline uses 128).
    staleness:
        ``None`` (default): staleness *emerges* from the simulated schedule
        and is recorded per update.  An explicit integer forces the classic
        fixed-staleness model (``0`` = always-fresh serial updates).
    steps_per_epoch:
        Server updates per recorded epoch; by default enough for every worker
        to pass over its shard once (matching the synchronous baseline's
        sample throughput).
    """

    name = "async_sgd"

    #: event-queue schedule has no SPMD replica form; on
    #: ``engine="process"`` this solver runs on the in-process
    #: simulated event engine instead of real worker processes.
    supports_process_engine = False

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 100,
        step_size: float = 0.1,
        batch_size: int = 128,
        staleness: Optional[int] = None,
        steps_per_epoch: Optional[int] = None,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
        random_state=0,
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
        )
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if staleness is not None and staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        self.step_size = float(step_size)
        self.batch_size = int(batch_size)
        self.staleness = staleness
        self.steps_per_epoch = steps_per_epoch
        self.random_state = random_state
        self._w = None
        self._history: Optional[deque] = None
        self._version = 0
        self._server_free = 0.0
        self._grad_bytes = 0.0
        self._push_seconds = 0.0
        self._last_extras: Dict[str, float] = {}
        self._staleness_log: List[int] = []
        #: crashed workers -> scheduled restart time (inf = never)
        self._dead: Dict[int, float] = {}

    # -- schedule helpers ----------------------------------------------------
    def _cycle_compute_seconds(self, cluster: SimulatedCluster, worker) -> float:
        """Modelled seconds of one mini-batch gradient on ``worker``."""
        loss = worker.state["local_mean_loss"]
        frac = min(self.batch_size, worker.n_local_samples) / max(
            worker.n_local_samples, 1
        )
        seconds = worker.device.compute_time(loss.flops_gradient() * frac)
        return seconds * cluster.straggler_factor(worker.worker_id)

    def _start_cycle(self, cluster: SimulatedCluster, worker) -> None:
        """Begin one pull→compute→push cycle on the worker's timeline.

        The worker snapshots the server weights it just pulled; the push is
        charged to its timeline and the arrival is posted as an in-flight
        event, so the message travels while other workers keep computing.  A
        crash inside the cycle freezes the timeline and drops the push — the
        in-flight gradient never reaches the server.
        """
        engine = cluster.engine
        fs = cluster.fault_state
        wid = worker.worker_id
        start = engine.time_of(wid)
        if fs is not None:
            fs.begin_cycle(wid, start)
            restart = crashed_at_start(fs, wid, start)
            if restart is not None:
                self._dead[wid] = restart
                return
        worker.state["w_pulled"] = copy_array(self._w)
        worker.state["pulled_version"] = self._version
        seconds = self._cycle_compute_seconds(cluster, worker)
        if fs is not None:
            restart = crash_guard(
                fs, engine, wid, start, seconds, self._push_seconds,
                busy_label="minibatch-grad", comm_label="push",
            )
            if restart is not None:
                self._dead[wid] = restart
                return
        engine.compute(wid, seconds, label="minibatch-grad")
        if fs is not None and fs.has_partitions:
            # The gradient is computed but cannot cross an open cut: the
            # push (and therefore the server's receipt) is delayed to the
            # heal; a worker lost during the delayed transfer (never-healing
            # cut, or a crash before the push lands) drops the gradient.
            restart = partition_transfer_guard(
                fs, engine, wid, self._push_seconds, comm_label="push"
            )
            if restart is not None:
                self._dead[wid] = restart
                return
        else:
            engine.communicate(
                worker.worker_id, self._push_seconds, label="push"
            )
        engine.post(worker.worker_id, 0.0)

    def _revive(self, cluster: SimulatedCluster, worker_id: int, restart: float) -> None:
        """Restarted worker: downtime onto its timeline, then a fresh cycle."""
        fs = cluster.fault_state
        fs.note_restart(worker_id, restart)
        fs.catch_up_timeline(cluster.engine, worker_id, restart)
        self._dead.pop(worker_id, None)
        self._start_cycle(cluster, cluster.workers[worker_id])

    def _next_event(self, cluster: SimulatedCluster):
        """Earliest arrival, reviving restartable crashed workers first."""
        if not self._dead:
            return cluster.engine.pop()
        return pop_next_arrival(
            cluster.engine,
            self._dead,
            lambda wid, r: self._revive(cluster, wid, r),
        )

    # -- hooks ---------------------------------------------------------------
    def _initialize(self, cluster: SimulatedCluster, w0) -> None:
        self._w = copy_array(w0)
        self._version = 0
        self._server_free = 0.0
        self._last_extras = {}
        self._staleness_log = []
        self._dead = {}
        if self.staleness is not None:
            # Forced-staleness mode: history of past server iterates; index 0
            # is the most stale one.
            k = int(self.staleness)
            self._history = deque([copy_array(w0)] * (k + 1), maxlen=k + 1)
        else:
            self._history = None
        self._grad_bytes = float(_nbytes(w0))
        self._push_seconds = cluster.network.point_to_point(self._grad_bytes)
        rng = check_random_state(self.random_state)
        for worker in cluster.workers:
            worker.state["local_mean_loss"] = SoftmaxCrossEntropy(
                worker.shard.X,
                worker.shard.y,
                worker.shard.n_classes,
                scale="mean",
                backend=cluster.backend,
            )
            worker.state["rng"] = check_random_state(int(rng.integers(0, 2**31 - 1)))
        for worker in cluster.workers:
            self._start_cycle(cluster, worker)

    @property
    def staleness_log(self) -> List[int]:
        """Measured staleness of every applied update, in server steps.

        Run state, not a hyper-parameter: exposed read-only so
        :meth:`hyperparameters` (which walks instance attributes) never
        embeds a previous run's log in provenance.
        """
        return self._staleness_log

    def _updates_in_epoch(self, cluster: SimulatedCluster) -> int:
        if self.steps_per_epoch is not None:
            return max(int(self.steps_per_epoch), 1)
        per_worker = [
            max(int(np.ceil(w.n_local_samples / self.batch_size)), 1)
            for w in cluster.workers
        ]
        return int(sum(per_worker))

    def _epoch(self, cluster: SimulatedCluster, epoch: int):
        if self._w is None:
            raise RuntimeError("AsynchronousSGD._epoch called before _initialize")
        engine = cluster.engine
        lam = self.lam
        n_updates = self._updates_in_epoch(cluster)
        # The server serializes one receive + one send per update.
        server_handling = 2.0 * self._push_seconds
        staleness_this_epoch: List[int] = []
        epoch_start = engine.now
        epoch_end = engine.now

        for _ in range(n_updates):
            event = self._next_event(cluster)
            worker = cluster.workers[event.worker_id]
            # Server applies arrivals in order, one at a time.
            applied_at = max(event.time, self._server_free)
            self._server_free = applied_at + server_handling
            staleness = self._version - int(worker.state["pulled_version"])

            loss = worker.state["local_mean_loss"]
            rng = worker.state["rng"]
            n_local = worker.n_local_samples
            batch = min(self.batch_size, n_local)
            idx = rng.choice(n_local, size=batch, replace=False)
            if self._history is not None:
                stale_w = self._history[0]  # forced-staleness ablation mode
                staleness = int(self.staleness)
            else:
                stale_w = worker.state["w_pulled"]
            grad = loss.minibatch(idx).gradient(stale_w) + lam * stale_w
            worker.objective.add_flops(
                loss.flops_gradient() * batch / max(n_local, 1)
            )
            self._w = self._w - self.step_size * grad
            self._version += 1
            if self._history is not None:
                self._history.append(copy_array(self._w))
            staleness_this_epoch.append(staleness)
            self._staleness_log.append(staleness)

            # The worker was idle since its push; the server spends
            # ``push_seconds`` ingesting its gradient after applying it, then
            # ``push_seconds`` sending the fresh weights back — the worker's
            # pull completes exactly when the server frees up.
            engine.wait_until(
                worker.worker_id,
                applied_at + self._push_seconds,
                label="server-queue",
            )
            fs = cluster.fault_state
            if fs is not None and fs.has_partitions:
                # A worker cut while its gradient sat in the server queue
                # cannot receive the fresh weights until the link heals (and
                # may be lost waiting, in which case its pull never happens).
                restart = partition_transfer_guard(
                    fs, cluster.engine, worker.worker_id,
                    self._push_seconds, comm_label="pull",
                )
                if restart is not None:
                    self._dead[worker.worker_id] = restart
                    continue
            else:
                engine.communicate(
                    worker.worker_id, self._push_seconds, label="pull"
                )
            self._start_cycle(cluster, worker)
            epoch_end = max(epoch_end, self._server_free)

        # Restarts that fell due during the epoch but were never needed to
        # feed the update loop still happen: the workers rejoin now so the
        # recorded events and the next epoch's schedule reflect them.
        for wid, r in sorted(self._dead.items()):
            if r <= epoch_end:
                self._revive(cluster, wid, r)

        # Global modelled time: the epoch ends when the server has handled
        # the last update; its serialized handling bounds the comm share.
        comm_seconds = n_updates * server_handling
        engine.advance_global_to(epoch_end, comm_seconds=comm_seconds)
        cluster.comm.log.record(
            "async_p2p",
            self._grad_bytes * 2 * n_updates,
            min(comm_seconds, max(engine.now - epoch_start, 0.0)),
            new_round=False,
        )

        arr = np.asarray(staleness_this_epoch, dtype=np.float64)
        self._last_extras = {
            "updates": float(n_updates),
            "staleness": float(arr.mean()) if arr.size else 0.0,
            "max_staleness": float(arr.max()) if arr.size else 0.0,
            "staleness_mode": "fixed" if self._history is not None else "measured",
            "step_size": self.step_size,
            "alive_workers": float(cluster.n_workers - len(self._dead)),
        }
        return self._w

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        return dict(self._last_extras)
