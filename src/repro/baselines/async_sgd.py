"""Asynchronous parameter-server SGD (the staleness-prone first-order baseline).

The paper's first-order comparison (§3, "Newton-ADMM outperforms
state-of-the-art distributed First-order methods") notes that asynchronous
SGD "weakens the rate of convergence due to the updates of older gradients to
global weight" and therefore compares only against synchronous SGD.  This
baseline implements the asynchronous variant so that claim can be reproduced
rather than assumed: workers pull the weights from a parameter server, compute
a mini-batch gradient, and push it back without any barrier, so by the time a
gradient is applied the server has already moved on by roughly ``N - 1``
updates (the *staleness*).

Cost model
----------
Workers overlap compute with each other; the parameter server serializes the
gradient receive + weight send of every update.  The modelled time per update
is therefore ``max(worker_cycle / N, server_handling)`` where
``worker_cycle = compute + push + pull``.  Staleness defaults to ``N - 1``
(the steady-state value of a round-robin pipeline) and is applied exactly:
the gradient for global step ``t`` is evaluated at the weights of step
``t - staleness``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

import numpy as np

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.solver_base import DistributedSolver
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.utils.rng import check_random_state


class AsynchronousSGD(DistributedSolver):
    """Parameter-server SGD with stale gradient updates.

    Parameters
    ----------
    step_size:
        Learning rate.
    batch_size:
        Per-worker mini-batch size (paper's synchronous baseline uses 128).
    staleness:
        Fixed gradient staleness in server steps; ``None`` uses ``N - 1``.
    steps_per_epoch:
        Server updates per recorded epoch; by default enough for every worker
        to pass over its shard once (matching the synchronous baseline's
        sample throughput).
    """

    name = "async_sgd"

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 100,
        step_size: float = 0.1,
        batch_size: int = 128,
        staleness: Optional[int] = None,
        steps_per_epoch: Optional[int] = None,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
        random_state=0,
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
        )
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if staleness is not None and staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        self.step_size = float(step_size)
        self.batch_size = int(batch_size)
        self.staleness = staleness
        self.steps_per_epoch = steps_per_epoch
        self.random_state = random_state
        self._w: Optional[np.ndarray] = None
        self._history: Optional[deque] = None
        self._last_extras: Dict[str, float] = {}

    # -- hooks ---------------------------------------------------------------
    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        self._w = w0.copy()
        staleness = self._staleness(cluster)
        # History of past server iterates; index 0 is the most stale one.
        self._history = deque([w0.copy()] * (staleness + 1), maxlen=staleness + 1)
        self._last_extras = {}
        rng = check_random_state(self.random_state)
        for worker in cluster.workers:
            worker.state["local_mean_loss"] = SoftmaxCrossEntropy(
                worker.shard.X,
                worker.shard.y,
                worker.shard.n_classes,
                scale="mean",
                backend=cluster.backend,
            )
            worker.state["rng"] = check_random_state(int(rng.integers(0, 2**31 - 1)))

    def _staleness(self, cluster: SimulatedCluster) -> int:
        if self.staleness is not None:
            return int(self.staleness)
        return max(cluster.n_workers - 1, 0)

    def _updates_in_epoch(self, cluster: SimulatedCluster) -> int:
        if self.steps_per_epoch is not None:
            return max(int(self.steps_per_epoch), 1)
        per_worker = [
            max(int(np.ceil(w.n_local_samples / self.batch_size)), 1)
            for w in cluster.workers
        ]
        return int(sum(per_worker))

    def _epoch(self, cluster: SimulatedCluster, epoch: int) -> np.ndarray:
        w = self._w
        history = self._history
        if w is None or history is None:
            raise RuntimeError("AsynchronousSGD._epoch called before _initialize")
        lam = self.lam
        n_updates = self._updates_in_epoch(cluster)
        n_workers = cluster.n_workers
        grad_bytes = 8.0 * cluster.dim

        # --- modelled time of the epoch --------------------------------------
        batch_fraction = [
            min(self.batch_size, wk.n_local_samples) / max(wk.n_local_samples, 1)
            for wk in cluster.workers
        ]
        compute_per_step = [
            wk.device.compute_time(
                wk.state["local_mean_loss"].flops_gradient() * frac
            )
            for wk, frac in zip(cluster.workers, batch_fraction)
        ]
        push_pull = 2.0 * cluster.network.point_to_point(grad_bytes)
        worker_cycle = float(np.mean(compute_per_step)) + push_pull
        server_handling = push_pull
        per_update = max(worker_cycle / max(n_workers, 1), server_handling)
        epoch_duration = n_updates * per_update
        comm_time = min(n_updates * server_handling, epoch_duration)
        cluster.clock.advance(max(epoch_duration - comm_time, 0.0), category="compute")
        cluster.clock.advance(comm_time, category="communication")
        cluster.comm.log.record(
            "async_p2p", grad_bytes * 2 * n_updates, comm_time, new_round=False
        )

        # --- stale-gradient updates -------------------------------------------
        for step in range(n_updates):
            worker = cluster.workers[step % n_workers]
            loss = worker.state["local_mean_loss"]
            rng = worker.state["rng"]
            n_local = worker.n_local_samples
            batch = min(self.batch_size, n_local)
            idx = rng.choice(n_local, size=batch, replace=False)
            stale_w = history[0]
            grad = loss.minibatch(idx).gradient(stale_w) + lam * stale_w
            worker.objective.add_flops(
                loss.flops_gradient() * batch / max(n_local, 1)
            )
            w = w - self.step_size * grad
            history.append(w.copy())

        self._w = w
        self._history = history
        self._last_extras = {
            "updates": float(n_updates),
            "staleness": float(self._staleness(cluster)),
            "step_size": self.step_size,
        }
        return w

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        return dict(self._last_extras)
