"""InexactDANE (Shamir et al.'s DANE with inexact local solves; Reddi et al. 2016).

Each iteration:

1. the global gradient is formed with an all-reduce of local gradients
   (round 1);
2. every worker *approximately* solves its local subproblem

   ``min_x  f_i(x) - (grad f_i(w) - eta * grad F(w))^T x + (mu/2) ||x - w||^2``

   with SVRG (the configuration the paper quotes: SVRG as the inexact local
   solver, step size chosen by a sweep);
3. the new iterate is the average of the local solutions (round 2).

The heavy local SVRG work — many passes over the shard per outer iteration —
is what makes InexactDANE's epochs orders of magnitude slower than
Newton-ADMM's in Figure 1, and that cost structure is preserved here.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.schedule import RoundPlan
from repro.distributed.solver_base import DistributedSolver
from repro.distributed.worker import Worker
from repro.objectives.base import LinearlyPerturbedObjective, RegularizedObjective
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.svrg import SVRG


class InexactDANE(DistributedSolver):
    """DANE with SVRG-based inexact local solves.

    Parameters
    ----------
    eta:
        DANE's gradient-mixing parameter (paper uses 1.0).
    mu:
        Proximal regularization of the local subproblem (paper uses 0.0).
    svrg_step_size, svrg_outer, svrg_inner_per_sample, svrg_batch_size,
    svrg_max_inner:
        Configuration of the local SVRG solver.  The paper uses 100 SVRG
        iterations with update frequency ``2n``; the defaults here are scaled
        down so the reproduction remains runnable, and the benchmark notes the
        substitution.
    """

    name = "inexact_dane"

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 10,
        eta: float = 1.0,
        mu: float = 0.0,
        svrg_step_size: float = 0.1,
        svrg_outer: int = 5,
        svrg_inner_per_sample: float = 2.0,
        svrg_batch_size: int = 8,
        svrg_max_inner: int = 400,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
        on_failure: str = "raise",
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
            on_failure=on_failure,
        )
        self.eta = float(eta)
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        self.mu = float(mu)
        self.svrg_step_size = float(svrg_step_size)
        self.svrg_outer = int(svrg_outer)
        self.svrg_inner_per_sample = float(svrg_inner_per_sample)
        self.svrg_batch_size = int(svrg_batch_size)
        self.svrg_max_inner = int(svrg_max_inner)
        self._w: Optional[np.ndarray] = None
        self._last_extras: Dict[str, float] = {}

    # -- shared with AIDE -------------------------------------------------
    def _local_objective(self, worker: Worker) -> RegularizedObjective:
        """The worker's local *mean* regularized objective f_i."""
        return worker.state["local_objective"]

    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        self._w = w0.copy()
        self._last_extras = {}
        for worker in cluster.workers:
            loss = SoftmaxCrossEntropy(
                worker.shard.X,
                worker.shard.y,
                worker.shard.n_classes,
                scale="mean",
                backend=cluster.backend,
            )
            worker.state["local_objective"] = RegularizedObjective(
                loss, L2Regularizer(loss.dim, self.lam)
            )

    def _make_local_solver(self, worker: Worker) -> SVRG:
        return SVRG(
            step_size=self.svrg_step_size,
            n_outer=self.svrg_outer,
            inner_per_sample=self.svrg_inner_per_sample,
            batch_size=self.svrg_batch_size,
            max_inner=self.svrg_max_inner,
            random_state=worker.worker_id,
        )

    def _charge_local_solve(self, worker: Worker, n_inner: int) -> None:
        """Charge the modelled FLOPs of the SVRG solve to the worker's counter.

        SVRG evaluates one full local gradient per outer iteration plus two
        mini-batch gradients per inner step; the local objective is not routed
        through the counting wrapper, so the cost is charged explicitly.
        """
        local = self._local_objective(worker)
        full_grad_flops = local.flops_gradient()
        batch_fraction = self.svrg_batch_size / max(worker.n_local_samples, 1)
        batch_grad_flops = full_grad_flops * batch_fraction
        per_outer = full_grad_flops + 2.0 * n_inner * batch_grad_flops
        worker.objective.add_flops(self.svrg_outer * per_outer)

    def _dane_plan(self, cluster: SimulatedCluster, w: np.ndarray, *, extra_mu: float = 0.0,
                   prox_center: Optional[np.ndarray] = None) -> RoundPlan:
        """Plan one DANE iteration from iterate ``w`` (optionally catalyst-augmented).

        ``extra_mu``/``prox_center`` add the AIDE acceleration term
        ``(tau/2)||x - y_acc||^2`` to both the gradients and the local
        subproblems; plain InexactDANE passes zero.  The returned plan binds
        the averaged local solutions to ``"averaged"``; subclasses append
        their own commit step (AIDE adds the momentum extrapolation).
        """
        lam = self.lam

        def augmented_gradient(objective, point: np.ndarray) -> np.ndarray:
            g = objective.gradient(point)
            if extra_mu > 0 and prox_center is not None:
                g = g + extra_mu * (point - prox_center)
            return g

        # ---- round 1: global gradient --------------------------------------
        def make_global_grad(ctx: dict) -> np.ndarray:
            global_grad = ctx["grad_sum"] + lam * w
            if extra_mu > 0 and prox_center is not None:
                global_grad = global_grad + extra_mu * (w - prox_center)
            return global_grad

        # ---- local subproblems (heavy SVRG work) ------------------------------
        def local_solve(worker: Worker, ctx: dict) -> tuple:
            global_grad = ctx["global_grad"]
            local = self._local_objective(worker)
            local_grad = augmented_gradient(local, w)
            linear = local_grad - self.eta * global_grad
            subproblem = LinearlyPerturbedObjective(
                local, linear, self.mu + extra_mu, w if prox_center is None else prox_center
            )
            solver = self._make_local_solver(worker)
            result = solver.minimize(subproblem, w)
            self._charge_local_solve(worker, result.info.get("inner_iterations", 0))
            return result.w, result.info.get("inner_iterations", 0)

        # ---- round 2: average the local solutions ------------------------------
        def average(ctx: dict) -> np.ndarray:
            averaged = ctx["solution_sum"] / cluster.n_workers
            local_results = ctx["local_solutions"]
            self._last_extras = {
                "global_grad_norm": float(np.linalg.norm(ctx["global_grad"])),
                "svrg_inner_iterations": float(
                    np.mean([r[1] for r in local_results])
                ),
            }
            return averaged

        plan = RoundPlan(self.name)
        plan.local(
            "local_grads",
            lambda worker, ctx: worker.objective.gradient(w),
            label="gradient",
            effects={"reads": []},
        )
        plan.allreduce(
            "grad_sum",
            lambda ctx: ctx["local_grads"],
            effects={"reads": ["local_grads"]},
        )
        plan.master(make_global_grad, name="global_grad", effects={"reads": ["grad_sum"]})
        plan.local(
            "local_solutions",
            local_solve,
            label="svrg-solve",
            effects={"reads": ["global_grad", "worker:local_objective"]},
        )
        plan.allreduce(
            "solution_sum",
            lambda ctx: [r[0] for r in ctx["local_solutions"]],
            effects={"reads": ["local_solutions"]},
        )
        plan.master(
            average,
            name="averaged",
            effects={"reads": ["solution_sum", "local_solutions", "global_grad"]},
        )
        return plan

    def _plan_epoch(self, cluster: SimulatedCluster, epoch: int) -> RoundPlan:
        if self._w is None:
            raise RuntimeError("InexactDANE epoch requested before _initialize")
        plan = self._dane_plan(cluster, self._w)

        def commit(ctx: dict) -> np.ndarray:
            self._w = ctx["averaged"]
            return self._w

        plan.master(commit, name="w", effects={"reads": ["averaged"]})
        plan.returns("w")
        return plan

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        return dict(self._last_extras)
