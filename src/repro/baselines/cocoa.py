"""CoCoA — Communication-efficient distributed dual coordinate ascent
(Jaggi et al., 2014; the "+" aggregation variant of Ma et al., 2015).

CoCoA optimizes the *dual* of the L2-regularized loss: every worker runs local
stochastic dual coordinate ascent (SDCA) passes over its own dual coordinates,
and only the resulting change of the shared primal vector ``v = w(alpha)`` is
all-reduced — one communication round per outer iteration.

Scope note (documented substitution, see DESIGN.md): the dual formulation is
standard for *binary* classifiers, so this implementation targets the binary
logistic problem (the HIGGS-like workload).  The paper lists CoCoA among the
related distributed second-order/dual methods but does not include it in any
figure; it is provided here for completeness of the baseline suite.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.schedule import RoundPlan
from repro.distributed.solver_base import DistributedSolver
from repro.distributed.worker import Worker
from repro.utils.rng import check_random_state


def _conjugate_logistic(alpha: np.ndarray) -> np.ndarray:
    """Fenchel conjugate term ``l*(-alpha)`` of the logistic loss on (0, 1)."""
    a = np.clip(alpha, 1e-12, 1.0 - 1e-12)
    return a * np.log(a) + (1.0 - a) * np.log(1.0 - a)


class CoCoA(DistributedSolver):
    """CoCoA(+) with an SDCA local solver for binary logistic regression.

    Parameters
    ----------
    local_passes:
        Number of passes each worker makes over its dual coordinates per outer
        iteration (the "local work" knob H of the CoCoA framework).
    sigma_prime:
        Safe aggregation parameter; ``None`` uses the CoCoA+ default (= number
        of workers) which allows adding (not averaging) the local updates.
    newton_steps:
        Scalar Newton steps used for each coordinate maximization.
    """

    name = "cocoa"

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 50,
        local_passes: int = 1,
        sigma_prime: Optional[float] = None,
        newton_steps: int = 5,
        alpha_init: float = 1e-6,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
        on_failure: str = "raise",
        random_state=0,
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
            on_failure=on_failure,
        )
        if local_passes < 1:
            raise ValueError(f"local_passes must be >= 1, got {local_passes}")
        if not 0.0 < alpha_init < 1.0:
            raise ValueError(f"alpha_init must be in (0, 1), got {alpha_init}")
        self.local_passes = int(local_passes)
        self.sigma_prime = sigma_prime
        self.newton_steps = int(newton_steps)
        self.alpha_init = float(alpha_init)
        self.random_state = random_state
        self._w: Optional[np.ndarray] = None
        self._n_total: int = 0
        self._last_extras: Dict[str, float] = {}

    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        if cluster.n_classes != 2:
            raise ValueError(
                "CoCoA is implemented for binary problems only "
                f"(got {cluster.n_classes} classes); see DESIGN.md"
            )
        self._n_total = cluster.n_total
        self._last_extras = {}
        sigma = self.sigma_prime if self.sigma_prime is not None else float(cluster.n_workers)
        rng = check_random_state(self.random_state)

        # Per-worker dual state: alpha in (0,1)^{n_local}, signed labels b, and
        # the per-sample squared norms used by the coordinate subproblems.
        v = np.zeros(cluster.dim)
        for worker in cluster.workers:
            X = worker.shard.X
            y = worker.shard.y
            b = np.where(y == 0, 1.0, -1.0)
            if sp.issparse(X):
                row_sq = np.asarray(X.multiply(X).sum(axis=1)).ravel()
            else:
                row_sq = np.einsum("ij,ij->i", X, X)
            alpha = np.full(worker.n_local_samples, self.alpha_init)
            worker.state["alpha"] = alpha
            worker.state["b"] = b
            worker.state["row_sq"] = row_sq
            worker.state["sigma_prime"] = sigma
            worker.state["rng"] = check_random_state(
                int(rng.integers(0, 2**31 - 1))
            )
            # Contribution of the initial alpha to v = (1/(lam n)) sum alpha_i b_i a_i.
            contrib = np.asarray(X.T @ (alpha * b)).ravel() / (
                self.lam * self._n_total
            )
            v += contrib
        self._w = v
        # Weight vector convention: the softmax-C2 global objective uses the
        # class-0 logit, which equals +v under the signed-label mapping above.

    def _plan_epoch(self, cluster: SimulatedCluster, epoch: int) -> RoundPlan:
        w = self._w
        if w is None:
            raise RuntimeError("CoCoA epoch requested before _initialize")
        lam = self.lam
        n = self._n_total
        newton_steps = self.newton_steps

        def local_sdca(worker: Worker, ctx: dict) -> np.ndarray:
            X = worker.shard.X
            alpha = worker.state["alpha"]
            b = worker.state["b"]
            row_sq = worker.state["row_sq"]
            sigma = float(worker.state["sigma_prime"])
            rng = worker.state["rng"]
            n_local = worker.n_local_samples
            delta_v = np.zeros_like(w)

            for _ in range(self.local_passes):
                order = rng.permutation(n_local)
                for i in order:
                    a_row = X[i]
                    if sp.issparse(a_row):
                        a_row = np.asarray(a_row.todense()).ravel()
                    else:
                        a_row = np.asarray(a_row).ravel()
                    # The CoCoA+ local subproblem multiplies *all* quadratic
                    # coupling through the shared vector by sigma', including
                    # the coupling to this worker's own earlier updates.
                    margin = float(b[i] * (a_row @ (w + sigma * delta_v)))
                    quad = sigma * row_sq[i] / (lam * n)
                    # Scalar Newton on h'(d) = log((a+d)/(1-a-d)) + margin + quad*d.
                    d = 0.0
                    a_i = alpha[i]
                    for _ in range(newton_steps):
                        u = np.clip(a_i + d, 1e-10, 1.0 - 1e-10)
                        h1 = np.log(u / (1.0 - u)) + margin + quad * d
                        h2 = 1.0 / (u * (1.0 - u)) + quad
                        d -= h1 / h2
                        d = float(np.clip(d, -a_i + 1e-10, 1.0 - a_i - 1e-10))
                    alpha[i] = a_i + d
                    if d != 0.0:
                        delta_v += (d * b[i] / (lam * n)) * a_row
            # Charge the local pass: each coordinate update is a handful of
            # O(p)-vector operations times the Newton steps.
            worker.objective.add_flops(
                self.local_passes * n_local * (6.0 * w.shape[0] + 10.0 * newton_steps)
            )
            return delta_v

        def commit(ctx: dict) -> np.ndarray:
            total_delta = ctx["total_delta"]
            self._w = w + total_delta
            dual_value = self._dual_objective(cluster)
            self._last_extras = {
                "dual_objective": dual_value,
                "delta_v_norm": float(np.linalg.norm(total_delta)),
            }
            return self._w

        # CoCoA+ adds the local updates (safe because sigma_prime >= n_workers);
        # a single all-reduce of delta_v is the round's only communication —
        # the one round the plan declares.
        plan = RoundPlan("cocoa")
        plan.local(
            "deltas",
            local_sdca,
            label="sdca",
            effects={
                "reads": [
                    "worker:alpha",
                    "worker:b",
                    "worker:row_sq",
                    "worker:sigma_prime",
                    "worker:rng",
                ],
                "writes": ["worker:alpha", "worker:rng"],
            },
        )
        plan.allreduce(
            "total_delta", lambda ctx: ctx["deltas"], effects={"reads": ["deltas"]}
        )
        plan.master(commit, name="w", effects={"reads": ["total_delta"]})
        plan.returns("w")
        return plan

    def _dual_objective(self, cluster: SimulatedCluster) -> float:
        """Dual objective value (for the duality-gap diagnostics in tests)."""
        if self._w is None:
            return float("nan")
        conj = 0.0
        for worker in cluster.workers:
            conj += float(np.sum(_conjugate_logistic(worker.state["alpha"])))
        n = self._n_total
        return -conj / n - 0.5 * self.lam * float(self._w @ self._w)

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        return dict(self._last_extras)
