"""DiSCO — Distributed Self-Concordant Optimization (Zhang & Lin, 2015).

Each outer iteration runs an inexact damped Newton step whose linear system is
solved by *distributed* conjugate gradient: every CG iteration needs one
all-reduce to assemble the global Hessian-vector product from the workers'
local contributions.  Communication per outer iteration is therefore
``1 (gradient) + #CG iterations`` rounds — the cost profile the paper
contrasts with Newton-ADMM's single round.

The reference method also builds a local preconditioner from one worker's data
solved to high accuracy; this implementation uses the unpreconditioned
distributed CG (documented substitution — it only makes DiSCO's CG counts, and
hence its communication, larger, which is the conservative direction for the
comparison).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.schedule import RoundPlan
from repro.distributed.solver_base import DistributedSolver
from repro.linalg.cg import conjugate_gradient


class DiSCO(DistributedSolver):
    """Distributed inexact damped Newton with distributed CG.

    Parameters
    ----------
    cg_max_iter, cg_tol:
        Budget / relative tolerance of the distributed CG solve.  Every CG
        iteration costs one communication round.
    damped:
        Use the self-concordant damping ``1 / (1 + newton_decrement)`` for the
        step size (the reference method); otherwise take unit steps.
    cg_block:
        Route the distributed CG through the block entry point (no effect on
        iterates for the single right-hand side solved here).
    precision:
        ``"mixed"`` accumulates CG reduction scalars in float64; ``None``
        follows the session default (:mod:`repro.backend.precision`).
    """

    name = "disco"

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 100,
        cg_max_iter: int = 20,
        cg_tol: float = 1e-4,
        damped: bool = True,
        cg_block: bool = False,
        precision: Optional[str] = None,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
        on_failure: str = "raise",
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
            on_failure=on_failure,
        )
        self.cg_max_iter = int(cg_max_iter)
        self.cg_tol = float(cg_tol)
        self.damped = bool(damped)
        self.cg_block = bool(cg_block)
        self.precision = precision
        self._w: Optional[np.ndarray] = None
        self._last_extras: Dict[str, float] = {}

    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        self._w = w0.copy()
        self._last_extras = {}

    def _plan_epoch(self, cluster: SimulatedCluster, epoch: int) -> RoundPlan:
        w = self._w
        if w is None:
            raise RuntimeError("DiSCO epoch requested before _initialize")
        lam = self.lam

        # ---- distributed CG: each matvec is one all-reduce round --------------
        # The CG loop's round count is data-dependent (it stops on the
        # residual), so this part of the schedule is a ``DynamicStep``: the
        # plan cannot declare a static total, but the observed rounds are
        # still logged and reported per epoch.
        def distributed_newton(cluster: SimulatedCluster, ctx: dict) -> np.ndarray:
            grad = ctx["grad"]
            matvec_rounds = 0

            def distributed_hvp(v: np.ndarray) -> np.ndarray:
                nonlocal matvec_rounds
                local_hvps = cluster.map_workers(lambda wk: wk.objective.hvp(w, v))
                out = cluster.comm.allreduce(local_hvps) + lam * v
                matvec_rounds += 1
                return out

            cg_result = conjugate_gradient(
                distributed_hvp,
                grad,
                tol=self.cg_tol,
                max_iter=self.cg_max_iter,
                precision=self.precision,
                block=self.cg_block,
            )
            direction = cg_result.x

            # ---- damped Newton step -------------------------------------------
            if self.damped:
                # Newton decrement sqrt(p^T H p); reuse one more distributed HVP.
                hp = distributed_hvp(direction)
                decrement = float(np.sqrt(max(direction @ hp, 0.0)))
                step = 1.0 / (1.0 + decrement)
            else:
                decrement = float("nan")
                step = 1.0

            self._w = w - step * direction
            self._last_extras = {
                "cg_iterations": float(cg_result.n_iterations),
                "hvp_rounds": float(matvec_rounds),
                "newton_decrement": decrement,
                "step_size": step,
            }
            return self._w

        plan = RoundPlan("disco")
        # ---- global gradient (one round) -----------------------------------
        plan.local(
            "local_grads",
            lambda worker, ctx: worker.objective.gradient(w),
            label="gradient",
            effects={"reads": []},
        )
        plan.allreduce(
            "grad_sum",
            lambda ctx: ctx["local_grads"],
            effects={"reads": ["local_grads"]},
        )
        plan.master(
            lambda ctx: ctx["grad_sum"] + lam * w,
            name="grad",
            effects={"reads": ["grad_sum"]},
        )
        plan.dynamic(
            "w",
            distributed_newton,
            rounds="one all-reduce per CG matvec (+1 for the Newton decrement)",
            effects={"reads": ["grad"]},
        )
        plan.returns("w")
        return plan

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        return dict(self._last_extras)
