"""Distributed baselines the paper compares Newton-ADMM against.

Second-order: GIANT, InexactDANE, AIDE, DiSCO, CoCoA.
First-order: synchronous mini-batch SGD, plus the asynchronous parameter-server
variant the paper dismisses for its stale-gradient convergence penalty.

All baselines run on the same :class:`~repro.distributed.cluster.SimulatedCluster`
and produce the same :class:`~repro.metrics.traces.RunTrace` as Newton-ADMM,
so the harness can build every figure from interchangeable runs.
"""

from repro.baselines.giant import GIANT
from repro.baselines.dane import InexactDANE
from repro.baselines.aide import AIDE
from repro.baselines.disco import DiSCO
from repro.baselines.cocoa import CoCoA
from repro.baselines.sync_sgd import SynchronousSGD
from repro.baselines.async_sgd import AsynchronousSGD

__all__ = [
    "GIANT",
    "InexactDANE",
    "AIDE",
    "DiSCO",
    "CoCoA",
    "SynchronousSGD",
    "AsynchronousSGD",
]
