"""Synchronous distributed mini-batch SGD (the first-order baseline of Figure 4).

Every optimization step, each worker computes the gradient of a 128-sample
mini-batch from its shard; the gradients are averaged with an all-reduce and a
single SGD update is applied.  One communication round *per mini-batch step*
— versus one per outer iteration for Newton-ADMM — is exactly the
communication-overhead contrast the paper draws, and it is what the modelled
epoch times expose.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.schedule import RoundPlan
from repro.distributed.solver_base import DistributedSolver
from repro.distributed.worker import Worker
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.utils.rng import check_random_state


class SynchronousSGD(DistributedSolver):
    """Synchronous data-parallel mini-batch SGD.

    Parameters
    ----------
    step_size:
        Learning rate (the paper sweeps 1e-8..1e8 and reports the best).
    batch_size:
        Per-worker mini-batch size (paper: 128).
    momentum:
        Optional classical momentum.
    steps_per_epoch:
        Override the number of synchronous steps per recorded epoch; by
        default one epoch is a full pass over the largest shard.
    """

    name = "sync_sgd"

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 100,
        step_size: float = 0.1,
        batch_size: int = 128,
        momentum: float = 0.0,
        steps_per_epoch: Optional[int] = None,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
        on_failure: str = "raise",
        random_state=0,
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
            on_failure=on_failure,
        )
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.step_size = float(step_size)
        self.batch_size = int(batch_size)
        self.momentum = float(momentum)
        self.steps_per_epoch = steps_per_epoch
        self.random_state = random_state
        self._w: Optional[np.ndarray] = None
        self._velocity: Optional[np.ndarray] = None
        self._last_extras: Dict[str, float] = {}

    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        self._w = w0.copy()
        self._velocity = np.zeros_like(w0)
        self._last_extras = {}
        rng = check_random_state(self.random_state)
        for worker in cluster.workers:
            # A local mean-scaled loss used only to draw mini-batch gradients;
            # its cost is charged explicitly to the counting wrapper.
            worker.state["local_mean_loss"] = SoftmaxCrossEntropy(
                worker.shard.X,
                worker.shard.y,
                worker.shard.n_classes,
                scale="mean",
                backend=cluster.backend,
            )
            worker.state["rng"] = check_random_state(int(rng.integers(0, 2**31 - 1)))

    def _steps_in_epoch(self, cluster: SimulatedCluster) -> int:
        if self.steps_per_epoch is not None:
            return max(int(self.steps_per_epoch), 1)
        largest_shard = max(w.n_local_samples for w in cluster.workers)
        return max(int(np.ceil(largest_shard / self.batch_size)), 1)

    def _local_batch_gradient(self, worker: Worker, w: np.ndarray) -> np.ndarray:
        loss = worker.state["local_mean_loss"]
        rng = worker.state["rng"]
        n_local = worker.n_local_samples
        batch = min(self.batch_size, n_local)
        idx = rng.choice(n_local, size=batch, replace=False)
        grad = loss.minibatch(idx).gradient(w)
        # The counting wrapper never sees the mini-batch object, so the
        # cost is charged explicitly at the batch/shard FLOP ratio.
        worker.objective.add_flops(
            loss.flops_gradient() * batch / max(n_local, 1)
        )
        return grad

    def _plan_epoch(self, cluster: SimulatedCluster, epoch: int) -> RoundPlan:
        if self._w is None or self._velocity is None:
            raise RuntimeError("SynchronousSGD epoch requested before _initialize")
        lam = self.lam
        n_steps = self._steps_in_epoch(cluster)

        # One (grad, all-reduce, update) triple repeated ``n_steps`` times;
        # context keys are reused and the body is declared once, so both the
        # scratch and the recorded schedule stay O(1) however many steps an
        # epoch has.  ``n_steps`` declared rounds — the method's defining
        # communication cost, one all-reduce per mini-batch step.
        plan = RoundPlan("sync_sgd", context={"w": self._w, "velocity": self._velocity})

        def update(ctx: dict) -> None:
            mean_grad = ctx["step_grad_sum"] / cluster.n_workers
            grad = mean_grad + lam * ctx["w"]
            ctx["velocity"] = self.momentum * ctx["velocity"] - self.step_size * grad
            ctx["w"] = ctx["w"] + ctx["velocity"]

        def sgd_step(body: RoundPlan) -> None:
            body.local(
                "step_grads",
                lambda worker, ctx: self._local_batch_gradient(worker, ctx["w"]),
                label="minibatch-grad",
                effects={
                    "reads": ["w", "worker:local_mean_loss", "worker:rng"],
                    "writes": ["worker:rng"],
                },
            )
            body.allreduce(
                "step_grad_sum",
                lambda ctx: ctx["step_grads"],
                effects={"reads": ["step_grads"]},
            )
            body.master(
                update,
                effects={
                    "reads": ["step_grad_sum", "w", "velocity"],
                    "writes": ["w", "velocity"],
                },
            )

        plan.repeat(n_steps, sgd_step)

        def commit(ctx: dict) -> np.ndarray:
            self._w = ctx["w"]
            self._velocity = ctx["velocity"]
            self._last_extras = {
                "steps": float(n_steps),
                "step_size": self.step_size,
            }
            return self._w

        plan.master(commit, name="w", effects={"reads": ["w", "velocity"]})
        plan.returns("w")
        return plan

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        return dict(self._last_extras)
