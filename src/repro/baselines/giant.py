"""GIANT — Globally Improved Approximate Newton (Wang et al., 2017).

Each iteration:

1. global gradient via an all-reduce of local gradient contributions
   (communication round 1);
2. every worker solves its *local* Newton system
   ``(H_i + lam I) p_i = g`` with CG and the directions are averaged
   (round 2);
3. a *distributed* line search: every worker evaluates its local objective at
   all candidate step sizes ``{2^0, 2^-1, ..., 2^-k}`` and the values are
   all-reduced so the master can pick the step (round 3).

The three rounds per iteration — and the fact that every worker always
evaluates the full step-size grid — are exactly the per-iteration overheads
the paper contrasts with Newton-ADMM's single round and local early-stopping
line search.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.solver_base import DistributedSolver
from repro.distributed.worker import Worker
from repro.linalg.cg import conjugate_gradient
from repro.objectives.base import ScaledObjective


class GIANT(DistributedSolver):
    """Distributed approximate Newton with averaged local Newton directions.

    Parameters
    ----------
    lam:
        L2 regularization.
    cg_max_iter, cg_tol:
        Local CG budget / tolerance (paper's comparison uses 10 / 1e-4, the
        same as Newton-ADMM).
    line_search_max_iter:
        Number of halvings in the step-size grid (paper: 10); all of them are
        always evaluated, by design of the method.
    line_search_beta:
        Armijo sufficient-decrease constant.
    """

    name = "giant"

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 100,
        cg_max_iter: int = 10,
        cg_tol: float = 1e-4,
        line_search_max_iter: int = 10,
        line_search_beta: float = 1e-4,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
        )
        self.cg_max_iter = int(cg_max_iter)
        self.cg_tol = float(cg_tol)
        self.line_search_max_iter = int(line_search_max_iter)
        self.line_search_beta = float(line_search_beta)
        self._w: Optional[np.ndarray] = None
        self._last_extras: Dict[str, float] = {}

    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        self._w = w0.copy()
        self._last_extras = {}
        n_total = cluster.n_total
        for worker in cluster.workers:
            # Local *mean* loss = (n_total / n_local) x the worker's global
            # contribution; GIANT's local Hessian is built from it.
            worker.state["local_mean_loss"] = ScaledObjective(
                worker.objective, n_total / worker.n_local_samples
            )

    def _epoch(self, cluster: SimulatedCluster, epoch: int) -> np.ndarray:
        w = self._w
        if w is None:
            raise RuntimeError("GIANT._epoch called before _initialize")
        lam = self.lam

        # ---- round 1: global gradient --------------------------------------
        local_grads = cluster.map_workers(lambda wk: wk.objective.gradient(w))
        grad = cluster.comm.allreduce(local_grads) + lam * w

        # ---- round 2: local Newton directions, then average ------------------
        def local_direction(worker: Worker) -> np.ndarray:
            local_mean = worker.state["local_mean_loss"]

            def hess_vec(v: np.ndarray) -> np.ndarray:
                return local_mean.hvp(w, v) + lam * v

            result = conjugate_gradient(
                hess_vec, grad, tol=self.cg_tol, max_iter=self.cg_max_iter
            )
            return result.x

        local_dirs = cluster.map_workers(local_direction)
        direction = cluster.comm.allreduce(local_dirs) / cluster.n_workers

        # ---- round 3: distributed line search over a fixed step grid ---------
        alphas = np.array(
            [2.0 ** (-j) for j in range(self.line_search_max_iter + 1)]
        )

        def local_line_values(worker: Worker) -> np.ndarray:
            # Every worker evaluates its local loss contribution at *all*
            # candidate steps plus the current point (last entry).
            values = np.empty(alphas.shape[0] + 1)
            for j, alpha in enumerate(alphas):
                values[j] = worker.objective.value(w - alpha * direction)
            values[-1] = worker.objective.value(w)
            return values

        local_values = cluster.map_workers(local_line_values)
        summed = cluster.comm.allreduce(local_values)

        f_current = summed[-1] + 0.5 * lam * float(w @ w)
        slope = float(direction @ grad)
        chosen_alpha = float(alphas[-1])
        for j, alpha in enumerate(alphas):
            candidate = w - alpha * direction
            f_candidate = summed[j] + 0.5 * lam * float(candidate @ candidate)
            if f_candidate <= f_current - self.line_search_beta * alpha * slope:
                chosen_alpha = float(alpha)
                break

        self._w = w - chosen_alpha * direction
        self._last_extras = {
            "step_size": chosen_alpha,
            "grad_norm": float(np.linalg.norm(grad)),
            "line_search_evaluations": float(alphas.shape[0]),
        }
        return self._w

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        return dict(self._last_extras)
