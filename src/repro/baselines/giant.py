"""GIANT — Globally Improved Approximate Newton (Wang et al., 2017).

Each iteration:

1. global gradient via an all-reduce of local gradient contributions
   (communication round 1);
2. every worker solves its *local* Newton system
   ``(H_i + lam I) p_i = g`` with CG and the directions are averaged
   (round 2);
3. a *distributed* line search: every worker evaluates its local objective at
   all candidate step sizes ``{2^0, 2^-1, ..., 2^-k}`` and the values are
   all-reduced so the master can pick the step (round 3).

The three rounds per iteration — and the fact that every worker always
evaluates the full step-size grid — are exactly the per-iteration overheads
the paper contrasts with Newton-ADMM's single round and local early-stopping
line search.  The schedule is declared as a
:class:`~repro.distributed.schedule.RoundPlan`, so the engine *checks* the
three rounds instead of trusting call order.

``overlap_gradient=True`` marks the gradient all-reduce overlappable — but
not with the CG solves, whose right-hand side *is* the reduced gradient (a
data dependency the schedule IR enforces: reading an overlapped collective's
result before its ``Join`` raises ``ScheduleError``).  The work it genuinely
can hide is the line search's step-independent evaluation of the local
objective at the *current* point ``f_i(w)`` — round 3 always needs that value
and it consumes neither the gradient nor the direction, so hoisting it under
the in-flight transfer is realizable on hardware.  On the event engine only
the part of the transfer that evaluation does not hide is charged; iterates
are bit-identical either way.  Under the lock-step engine the flag is
accepted but the transfer is charged in full, keeping the two modes
comparable.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.schedule import RoundPlan
from repro.distributed.solver_base import DistributedSolver
from repro.distributed.worker import Worker
from repro.linalg.cg import conjugate_gradient
from repro.objectives.base import ScaledObjective


class GIANT(DistributedSolver):
    """Distributed approximate Newton with averaged local Newton directions.

    Parameters
    ----------
    lam:
        L2 regularization.
    cg_max_iter, cg_tol:
        Local CG budget / tolerance (paper's comparison uses 10 / 1e-4, the
        same as Newton-ADMM).
    line_search_max_iter:
        Number of halvings in the step-size grid (paper: 10); all of them are
        always evaluated, by design of the method.
    line_search_beta:
        Armijo sufficient-decrease constant.
    overlap_gradient:
        Overlap the gradient all-reduce with the line search's
        step-independent ``f_i(w)`` evaluation, the only local work in the
        iteration that does not consume the reduced gradient (event engine).
        Iterates are bit-identical to the default; only the modelled schedule
        changes.
    cg_block:
        Route the local Newton solves through the block-CG entry point.
        With the single right-hand side of GIANT's system this never changes
        iterates (1-D solves always take the exact scalar recurrence).
    precision:
        ``"mixed"`` accumulates CG reduction scalars in float64; ``None``
        follows the session default (:mod:`repro.backend.precision`).
    """

    name = "giant"

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 100,
        cg_max_iter: int = 10,
        cg_tol: float = 1e-4,
        line_search_max_iter: int = 10,
        line_search_beta: float = 1e-4,
        overlap_gradient: bool = False,
        cg_block: bool = False,
        precision: Optional[str] = None,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
        on_failure: str = "raise",
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
            on_failure=on_failure,
        )
        self.cg_max_iter = int(cg_max_iter)
        self.cg_tol = float(cg_tol)
        self.line_search_max_iter = int(line_search_max_iter)
        self.line_search_beta = float(line_search_beta)
        self.overlap_gradient = bool(overlap_gradient)
        self.cg_block = bool(cg_block)
        self.precision = precision
        self._w: Optional[np.ndarray] = None
        self._last_extras: Dict[str, float] = {}

    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        self._w = w0.copy()
        self._last_extras = {}
        n_total = cluster.n_total
        for worker in cluster.workers:
            # Local *mean* loss = (n_total / n_local) x the worker's global
            # contribution; GIANT's local Hessian is built from it.
            worker.state["local_mean_loss"] = ScaledObjective(
                worker.objective, n_total / worker.n_local_samples
            )

    def _plan_epoch(self, cluster: SimulatedCluster, epoch: int) -> RoundPlan:
        w = self._w
        if w is None:
            raise RuntimeError("GIANT epoch requested before _initialize")
        lam = self.lam

        # ---- round 1: global gradient --------------------------------------
        def local_gradient(worker: Worker, ctx: dict) -> np.ndarray:
            return worker.objective.gradient(w)

        # ---- round 2: local Newton directions, then average ------------------
        def local_direction(worker: Worker, ctx: dict) -> np.ndarray:
            grad = ctx["grad"]
            local_mean = worker.state["local_mean_loss"]

            def hess_vec(v: np.ndarray) -> np.ndarray:
                return local_mean.hvp(w, v) + lam * v

            result = conjugate_gradient(
                hess_vec,
                grad,
                tol=self.cg_tol,
                max_iter=self.cg_max_iter,
                precision=self.precision,
                block=self.cg_block,
            )
            return result.x

        # ---- round 3: distributed line search over a fixed step grid ---------
        alphas = np.array(
            [2.0 ** (-j) for j in range(self.line_search_max_iter + 1)]
        )

        def local_line_values(worker: Worker, ctx: dict) -> np.ndarray:
            # Every worker evaluates its local loss contribution at *all*
            # candidate steps plus the current point (last entry).  The
            # overlap variant hoisted the current-point value under the
            # in-flight gradient transfer; the buffer is identical either way.
            direction = ctx["direction"]
            values = np.empty(alphas.shape[0] + 1)
            for j, alpha in enumerate(alphas):
                values[j] = worker.objective.value(w - alpha * direction)
            if self.overlap_gradient:
                values[-1] = ctx["value_at_w"][worker.worker_id]
            else:
                values[-1] = worker.objective.value(w)
            return values

        def choose_step(ctx: dict) -> np.ndarray:
            direction = ctx["direction"]
            grad = ctx["grad"]
            summed = ctx["line_values_sum"]
            f_current = summed[-1] + 0.5 * lam * float(w @ w)
            slope = float(direction @ grad)
            chosen_alpha = float(alphas[-1])
            for j, alpha in enumerate(alphas):
                candidate = w - alpha * direction
                f_candidate = summed[j] + 0.5 * lam * float(candidate @ candidate)
                if f_candidate <= f_current - self.line_search_beta * alpha * slope:
                    chosen_alpha = float(alpha)
                    break

            self._w = w - chosen_alpha * direction
            self._last_extras = {
                "step_size": chosen_alpha,
                "grad_norm": float(np.linalg.norm(grad)),
                "line_search_evaluations": float(alphas.shape[0]),
            }
            return self._w

        # Effect declarations: ``local_line_values`` reads ``value_at_w``
        # only in the overlap variant (a conditional the AST inference would
        # over-approximate), so each variant declares its exact footprint.
        line_values_reads = ["direction"]
        if self.overlap_gradient:
            line_values_reads.append("value_at_w")

        plan = RoundPlan("giant-overlap" if self.overlap_gradient else "giant")
        plan.local(
            "local_grads", local_gradient, label="gradient", effects={"reads": []}
        )
        if self.overlap_gradient:
            # The all-reduce rides in the background while every worker
            # evaluates f_i(w) — round 3's step-independent term, the one
            # piece of local work that does not consume the reduced gradient.
            # Only then is the transfer joined; the CG solve (whose RHS is
            # the reduced gradient) stays strictly after the join, which the
            # context's in-flight guard enforces.
            plan.allreduce(
                "grad_sum",
                lambda ctx: ctx["local_grads"],
                overlap=True,
                effects={"reads": ["local_grads"]},
            )
            plan.local(
                "value_at_w",
                lambda worker, ctx: worker.objective.value(w),
                label="line-search-f0",
                effects={"reads": []},
            )
            plan.join()
        else:
            plan.allreduce(
                "grad_sum",
                lambda ctx: ctx["local_grads"],
                effects={"reads": ["local_grads"]},
            )
        plan.master(
            lambda ctx: ctx["grad_sum"] + lam * w,
            name="grad",
            effects={"reads": ["grad_sum"]},
        )
        plan.local(
            "local_dirs",
            local_direction,
            label="newton-cg",
            effects={"reads": ["grad", "worker:local_mean_loss"]},
        )
        plan.allreduce(
            "dir_sum",
            lambda ctx: ctx["local_dirs"],
            effects={"reads": ["local_dirs"]},
        )
        plan.master(
            lambda ctx: ctx["dir_sum"] / cluster.n_workers,
            name="direction",
            effects={"reads": ["dir_sum"]},
        )
        plan.local(
            "line_values",
            local_line_values,
            label="line-search",
            effects={"reads": line_values_reads},
        )
        plan.allreduce(
            "line_values_sum",
            lambda ctx: ctx["line_values"],
            effects={"reads": ["line_values"]},
        )
        plan.master(
            choose_step,
            name="w",
            effects={"reads": ["direction", "grad", "line_values_sum"]},
        )
        plan.returns("w")
        return plan

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        return dict(self._last_extras)
