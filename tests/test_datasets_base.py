"""Tests for ClassificationDataset and train/test splitting."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets.base import ClassificationDataset, train_test_split


def make_ds(n=60, p=4, c=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, p))
    y = rng.integers(0, c, size=n)
    y[:c] = np.arange(c)  # guarantee every class appears
    return ClassificationDataset(X=X, y=y, n_classes=c, name="t")


class TestDataset:
    def test_shapes(self):
        ds = make_ds()
        assert ds.n_samples == 60
        assert ds.n_features == 4
        assert ds.n_classes == 3
        assert ds.dim == 2 * 4

    def test_sparse_flag(self):
        ds = make_ds()
        assert not ds.is_sparse
        sp_ds = ClassificationDataset(
            X=sp.random(30, 10, density=0.2, format="csr", random_state=0),
            y=np.arange(30) % 3,
            n_classes=3,
        )
        assert sp_ds.is_sparse
        assert sp_ds.nbytes() > 0

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ClassificationDataset(
                X=np.zeros((3, 2)), y=np.array([0, 1, 5]), n_classes=3
            )

    def test_class_counts_sum(self):
        ds = make_ds()
        assert ds.class_counts().sum() == ds.n_samples
        assert ds.class_counts().shape == (3,)

    def test_subset(self):
        ds = make_ds()
        sub = ds.subset(np.arange(10))
        assert sub.n_samples == 10
        np.testing.assert_array_equal(sub.y, ds.y[:10])
        assert sub.n_classes == ds.n_classes

    def test_subsample_stratified_size(self):
        ds = make_ds(n=200)
        sub = ds.subsample(60, random_state=0)
        assert sub.n_samples == 60

    def test_subsample_preserves_class_proportions_roughly(self):
        ds = make_ds(n=600)
        sub = ds.subsample(300, random_state=0)
        orig = ds.class_counts() / ds.n_samples
        new = sub.class_counts() / sub.n_samples
        assert np.max(np.abs(orig - new)) < 0.1

    def test_subsample_too_large_rejected(self):
        ds = make_ds(n=50)
        with pytest.raises(ValueError):
            ds.subsample(100)

    def test_subsample_unstratified(self):
        ds = make_ds(n=100)
        sub = ds.subsample(40, random_state=1, stratified=False)
        assert sub.n_samples == 40

    def test_describe_keys(self):
        info = make_ds().describe()
        for key in ("name", "n_classes", "n_samples", "n_features", "dim"):
            assert key in info

    def test_nbytes_dense(self):
        ds = make_ds()
        assert ds.nbytes() == ds.X.nbytes


class TestTrainTestSplit:
    def test_fractional_size(self):
        ds = make_ds(n=100)
        train, test = train_test_split(ds, test_size=0.25, random_state=0)
        assert test.n_samples == 25
        assert train.n_samples == 75

    def test_absolute_size(self):
        ds = make_ds(n=100)
        train, test = train_test_split(ds, test_size=30, random_state=0)
        assert test.n_samples == 30
        assert train.n_samples == 70

    def test_no_overlap_and_full_coverage(self):
        ds = make_ds(n=80)
        ds_tagged = ClassificationDataset(
            X=np.hstack([ds.X, np.arange(80)[:, None]]), y=ds.y, n_classes=3
        )
        train, test = train_test_split(ds_tagged, test_size=20, random_state=0)
        train_ids = set(train.X[:, -1].astype(int))
        test_ids = set(test.X[:, -1].astype(int))
        assert train_ids.isdisjoint(test_ids)
        assert len(train_ids | test_ids) == 80

    def test_stratification_keeps_all_classes(self):
        ds = make_ds(n=300)
        train, test = train_test_split(ds, test_size=60, random_state=0)
        assert set(np.unique(test.y)) == set(range(3))
        assert set(np.unique(train.y)) == set(range(3))

    def test_invalid_fraction_rejected(self):
        ds = make_ds()
        with pytest.raises(ValueError):
            train_test_split(ds, test_size=1.5)

    def test_invalid_absolute_rejected(self):
        ds = make_ds(n=10)
        with pytest.raises(ValueError):
            train_test_split(ds, test_size=10)

    def test_deterministic_given_seed(self):
        ds = make_ds(n=100)
        _, t1 = train_test_split(ds, test_size=20, random_state=5)
        _, t2 = train_test_split(ds, test_size=20, random_state=5)
        np.testing.assert_array_equal(t1.y, t2.y)

    def test_unstratified_split(self):
        ds = make_ds(n=100)
        train, test = train_test_split(
            ds, test_size=20, random_state=0, stratified=False
        )
        assert train.n_samples == 80 and test.n_samples == 20
