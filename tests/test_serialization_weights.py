"""Weight round-trip hardening: save -> load must be bit-exact incl. dtype.

The model registry publishes straight from ``save_trace(include_weights=True)``
payloads, so these guarantees are load-bearing for serving, not cosmetic.
"""

import json

import numpy as np
import pytest

from repro.harness.serialization import (
    decode_array,
    encode_array,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.metrics.traces import EpochRecord, RunTrace


def _bits(a):
    """Bit pattern of a float array (NaN payloads and -0.0 included)."""
    return a.view(np.uint32 if a.dtype == np.float32 else np.uint64)


def _make_trace(w):
    trace = RunTrace(method="m", dataset="d", n_workers=2)
    trace.records.append(EpochRecord(epoch=1, objective=0.5))
    trace.final_w = w
    return trace


class TestEncodeDecode:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_roundtrip_bit_exact_including_dtype(self, dtype):
        rng = np.random.default_rng(0)
        w = rng.standard_normal(97).astype(dtype)
        out = decode_array(encode_array(w))
        assert out.dtype == dtype
        assert np.array_equal(_bits(out), _bits(w))

    def test_special_values_survive(self):
        w = np.array([np.nan, np.inf, -np.inf, -0.0, 1e-310], dtype=np.float64)
        out = decode_array(encode_array(w))
        assert np.array_equal(_bits(out), _bits(w))
        # -0.0 sign bit preserved (a repr round trip can lose it via "nan"/"inf"
        # string substitution in the legacy path)
        assert np.signbit(out[3])

    def test_payload_is_json_safe(self):
        w = np.linspace(0, 1, 7, dtype=np.float32)
        payload = json.loads(json.dumps(encode_array(w)))
        out = decode_array(payload)
        assert out.dtype == np.float32
        assert np.array_equal(out, w)

    def test_2d_shape_preserved(self):
        w = np.arange(12, dtype=np.float32).reshape(3, 4)
        out = decode_array(encode_array(w))
        assert out.shape == (3, 4)
        assert np.array_equal(out, w)

    def test_decoded_array_is_writable(self):
        out = decode_array(encode_array(np.zeros(3)))
        out[0] = 1.0  # frombuffer alone would be read-only

    def test_truncated_data_raises(self):
        payload = encode_array(np.zeros(16))
        payload["data"] = payload["data"][: len(payload["data"]) // 2]
        with pytest.raises(ValueError, match="truncated|malformed"):
            decode_array(payload)

    def test_garbage_base64_raises(self):
        payload = encode_array(np.zeros(4))
        payload["data"] = "!!not base64!!"
        with pytest.raises(ValueError, match="malformed"):
            decode_array(payload)

    def test_missing_keys_raise(self):
        with pytest.raises(ValueError, match="malformed"):
            decode_array({"__ndarray__": True, "dtype": "<f8"})


class TestTraceWeights:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_save_load_trace_weights_bit_exact(self, tmp_path, dtype):
        rng = np.random.default_rng(1)
        w = rng.standard_normal(64).astype(dtype)
        path = save_trace(_make_trace(w), tmp_path / "t.json", include_weights=True)
        restored = load_trace(path)
        assert restored.final_w.dtype == dtype
        assert np.array_equal(_bits(restored.final_w), _bits(w))

    def test_weights_not_stored_by_default(self, tmp_path):
        path = save_trace(_make_trace(np.zeros(4)), tmp_path / "t.json")
        assert "final_w" not in json.loads(path.read_text())

    def test_legacy_list_format_still_loads(self):
        data = trace_to_dict(_make_trace(None))
        data["final_w"] = [0.25, -1.5, 3.0]  # pre-PR-8 lossy list format
        restored = trace_from_dict(data)
        assert restored.final_w.dtype == np.float64
        np.testing.assert_array_equal(restored.final_w, [0.25, -1.5, 3.0])

    @pytest.mark.slow
    def test_solver_final_w_roundtrip(self, tmp_path):
        """A real solver trace's final iterate survives the disk round trip."""
        from repro.harness.config import ClusterConfig, SolverConfig
        from repro.harness.runner import run_method

        trace = run_method(
            SolverConfig("newton_admm", {"max_epochs": 2}),
            ClusterConfig("mnist_like", n_workers=2, n_train=300, n_test=60),
        )
        path = save_trace(trace, tmp_path / "run.json", include_weights=True)
        restored = load_trace(path)
        assert restored.final_w.dtype == trace.final_w.dtype
        assert np.array_equal(_bits(restored.final_w), _bits(trace.final_w))
