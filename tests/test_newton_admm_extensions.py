"""Tests for the Newton-ADMM extensions: over-relaxation, residual-based
stopping, and the decreasing CG-tolerance (inexactness) schedule."""

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.harness.runner import reference_optimum


@pytest.fixture(scope="module")
def dataset():
    return make_multiclass_gaussian(
        n_samples=320,
        n_features=10,
        n_classes=3,
        class_separation=3.0,
        random_state=0,
        name="admm-ext",
    )


@pytest.fixture(scope="module")
def f_star(dataset):
    _, value = reference_optimum(dataset, 1e-3, max_iterations=100, cg_max_iter=100)
    return value


def make_cluster(dataset, n_workers=4):
    return SimulatedCluster(dataset, n_workers, random_state=0)


class TestOverRelaxation:
    def test_alpha_one_reproduces_default(self, dataset):
        plain = NewtonADMM(lam=1e-3, max_epochs=5, record_accuracy=False).fit(
            make_cluster(dataset)
        )
        explicit = NewtonADMM(
            lam=1e-3, max_epochs=5, over_relaxation=1.0, record_accuracy=False
        ).fit(make_cluster(dataset))
        np.testing.assert_allclose(plain.final_w, explicit.final_w)

    def test_over_relaxed_run_still_converges(self, dataset, f_star):
        trace = NewtonADMM(
            lam=1e-3, max_epochs=40, over_relaxation=1.6, record_accuracy=False
        ).fit(make_cluster(dataset))
        assert trace.final.objective <= f_star * 1.05 + 1e-6

    def test_over_relaxation_changes_iterates(self, dataset):
        plain = NewtonADMM(lam=1e-3, max_epochs=5, record_accuracy=False).fit(
            make_cluster(dataset)
        )
        relaxed = NewtonADMM(
            lam=1e-3, max_epochs=5, over_relaxation=1.7, record_accuracy=False
        ).fit(make_cluster(dataset))
        assert not np.allclose(plain.final_w, relaxed.final_w)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            NewtonADMM(over_relaxation=0.9)
        with pytest.raises(ValueError):
            NewtonADMM(over_relaxation=2.0)


class TestResidualStopping:
    def test_stops_before_max_epochs_on_loose_tolerance(self, dataset):
        trace = NewtonADMM(
            lam=1e-3,
            max_epochs=200,
            stop_abs_tol=1e-2,
            stop_rel_tol=1e-1,
            record_accuracy=False,
        ).fit(make_cluster(dataset))
        assert trace.final.epoch < 200

    def test_tight_tolerance_runs_longer_than_loose(self, dataset):
        loose = NewtonADMM(
            lam=1e-3,
            max_epochs=100,
            stop_abs_tol=1e-2,
            stop_rel_tol=1e-1,
            record_accuracy=False,
        ).fit(make_cluster(dataset))
        tight = NewtonADMM(
            lam=1e-3,
            max_epochs=100,
            stop_abs_tol=1e-6,
            stop_rel_tol=1e-5,
            record_accuracy=False,
        ).fit(make_cluster(dataset))
        assert tight.final.epoch >= loose.final.epoch

    def test_disabled_by_default(self, dataset):
        trace = NewtonADMM(lam=1e-3, max_epochs=12, record_accuracy=False).fit(
            make_cluster(dataset)
        )
        assert trace.final.epoch == 12

    def test_early_stop_records_final_epoch(self, dataset):
        trace = NewtonADMM(
            lam=1e-3,
            max_epochs=200,
            evaluate_every=5,
            stop_abs_tol=1e-2,
            stop_rel_tol=1e-1,
            record_accuracy=False,
        ).fit(make_cluster(dataset))
        # The stopping epoch is recorded even when it is not a multiple of
        # evaluate_every.
        assert trace.records
        assert trace.final.extras["primal_residual"] >= 0

    def test_negative_tolerances_rejected(self):
        with pytest.raises(ValueError):
            NewtonADMM(stop_abs_tol=-1.0)
        with pytest.raises(ValueError):
            NewtonADMM(stop_rel_tol=-1.0)


class TestCGToleranceSchedule:
    def test_decay_one_is_constant(self):
        solver = NewtonADMM(cg_tol=1e-4, cg_tol_decay=1.0)
        assert solver._make_local_solver(1).cg_tol == pytest.approx(1e-4)
        assert solver._make_local_solver(50).cg_tol == pytest.approx(1e-4)

    def test_decay_tightens_tolerance_over_epochs(self):
        solver = NewtonADMM(cg_tol=1e-2, cg_tol_decay=0.5)
        assert solver._make_local_solver(1).cg_tol == pytest.approx(1e-2)
        assert solver._make_local_solver(2).cg_tol == pytest.approx(5e-3)
        assert solver._make_local_solver(5).cg_tol == pytest.approx(1e-2 * 0.5**4)

    def test_tolerance_floored(self):
        solver = NewtonADMM(cg_tol=1e-4, cg_tol_decay=0.1)
        assert solver._make_local_solver(100).cg_tol >= 1e-14

    def test_decaying_schedule_converges(self, dataset, f_star):
        trace = NewtonADMM(
            lam=1e-3,
            max_epochs=40,
            cg_tol=1e-2,
            cg_tol_decay=0.8,
            record_accuracy=False,
        ).fit(make_cluster(dataset))
        assert trace.final.objective <= f_star * 1.05 + 1e-6

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            NewtonADMM(cg_tol_decay=0.0)
        with pytest.raises(ValueError):
            NewtonADMM(cg_tol_decay=1.5)

    def test_hyperparameters_serialized(self):
        solver = NewtonADMM(over_relaxation=1.5, cg_tol_decay=0.9, stop_abs_tol=1e-4)
        params = solver.hyperparameters()
        assert params["over_relaxation"] == 1.5
        assert params["cg_tol_decay"] == 0.9
        assert params["stop_abs_tol"] == 1e-4
