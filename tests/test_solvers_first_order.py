"""Tests for the first-order single-node solvers (GD, SGD, adaptive, SVRG, L-BFGS)."""

import numpy as np
import pytest

from repro.objectives.base import RegularizedObjective
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.adaptive import Adadelta, Adagrad, Adam, RMSProp
from repro.solvers.gradient_descent import GradientDescent
from repro.solvers.lbfgs import LBFGS
from repro.solvers.newton_cg import NewtonCG
from repro.solvers.sgd import SGD
from repro.solvers.svrg import SVRG


@pytest.fixture(scope="module")
def objective():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((200, 8))
    w_true = rng.standard_normal((8, 2))
    logits = X @ w_true
    y = np.argmax(np.hstack([logits, np.zeros((200, 1))]), axis=1)
    loss = SoftmaxCrossEntropy(X, y, 3)
    return RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-3))


@pytest.fixture(scope="module")
def f_star(objective):
    return NewtonCG(max_iterations=100, cg_max_iter=100, cg_tol=1e-10,
                    grad_tol=1e-10).minimize(objective).objective


class TestGradientDescent:
    def test_decreases_objective(self, objective):
        res = GradientDescent(max_iterations=50).minimize(objective)
        assert res.objective < objective.value(np.zeros(objective.dim))

    def test_monotone_with_line_search(self, objective):
        res = GradientDescent(max_iterations=30, line_search=True).minimize(objective)
        assert np.all(np.diff(res.objective_trace()) <= 1e-12)

    def test_fixed_step(self, objective):
        res = GradientDescent(
            max_iterations=30, step_size=0.5, line_search=False
        ).minimize(objective)
        assert res.objective < np.log(3)

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            GradientDescent(step_size=0.0)

    def test_gets_reasonably_close_to_optimum(self, objective, f_star):
        res = GradientDescent(max_iterations=200).minimize(objective)
        assert res.objective < f_star + 0.1


class TestSGD:
    def test_decreases_objective(self, objective):
        res = SGD(step_size=0.2, batch_size=32, max_epochs=20, random_state=0).minimize(
            objective
        )
        assert res.objective < np.log(3)

    def test_momentum_accepted(self, objective):
        res = SGD(
            step_size=0.1, momentum=0.9, batch_size=32, max_epochs=10, random_state=0
        ).minimize(objective)
        assert np.isfinite(res.objective)

    def test_records_one_per_epoch(self, objective):
        res = SGD(step_size=0.1, max_epochs=5, random_state=0).minimize(objective)
        assert len(res.records) == 5
        assert [r.extras["epoch"] for r in res.records] == [1, 2, 3, 4, 5]

    def test_deterministic_given_seed(self, objective):
        a = SGD(step_size=0.1, max_epochs=3, random_state=7).minimize(objective)
        b = SGD(step_size=0.1, max_epochs=3, random_state=7).minimize(objective)
        np.testing.assert_allclose(a.w, b.w)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SGD(step_size=-1.0)
        with pytest.raises(ValueError):
            SGD(batch_size=0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)


class TestAdaptiveMethods:
    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (Adam, {"step_size": 0.05}),
            (Adagrad, {"step_size": 0.2}),
            (RMSProp, {"step_size": 0.02}),
            (Adadelta, {"step_size": 1.0}),
        ],
    )
    def test_decreases_objective(self, objective, cls, kwargs):
        res = cls(batch_size=32, max_epochs=15, random_state=0, **kwargs).minimize(
            objective
        )
        assert res.objective < np.log(3)

    def test_adam_bias_correction_finite_first_step(self, objective):
        res = Adam(step_size=0.01, batch_size=32, max_epochs=1, random_state=0).minimize(
            objective
        )
        assert np.all(np.isfinite(res.w))

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            Adam(step_size=0.0)


class TestSVRG:
    def test_decreases_objective(self, objective):
        res = SVRG(
            step_size=0.05, n_outer=5, inner_per_sample=0.5, batch_size=8,
            random_state=0,
        ).minimize(objective)
        assert res.objective < np.log(3)

    def test_records_per_outer_iteration(self, objective):
        res = SVRG(step_size=0.05, n_outer=4, max_inner=50, random_state=0).minimize(
            objective
        )
        assert len(res.records) == 4

    def test_inner_iteration_cap(self, objective):
        res = SVRG(
            step_size=0.05, n_outer=1, inner_per_sample=100.0, max_inner=20,
            random_state=0,
        ).minimize(objective)
        assert res.info["inner_iterations"] == 20

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SVRG(step_size=-0.1)
        with pytest.raises(ValueError):
            SVRG(n_outer=0)
        with pytest.raises(ValueError):
            SVRG(inner_per_sample=0.0)


class TestLBFGS:
    def test_converges_close_to_newton_optimum(self, objective, f_star):
        res = LBFGS(max_iterations=150, grad_tol=1e-7).minimize(objective)
        assert res.objective < f_star + 1e-3

    def test_monotone_decrease(self, objective):
        res = LBFGS(max_iterations=40).minimize(objective)
        assert np.all(np.diff(res.objective_trace()) <= 1e-12)

    def test_memory_bound_respected(self, objective):
        res = LBFGS(memory=3, max_iterations=20).minimize(objective)
        assert all(r.extras["memory_pairs"] <= 3 for r in res.records)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            LBFGS(memory=0)

    def test_faster_than_gd_in_iterations(self, objective, f_star):
        target = f_star + 0.01
        lbfgs = LBFGS(max_iterations=200, grad_tol=0.0).minimize(objective)
        gd = GradientDescent(max_iterations=200, grad_tol=0.0).minimize(objective)
        lbfgs_hits = np.flatnonzero(lbfgs.objective_trace() <= target)
        gd_hits = np.flatnonzero(gd.objective_trace() <= target)
        assert lbfgs_hits.size > 0
        if gd_hits.size > 0:
            assert lbfgs_hits[0] <= gd_hits[0]
