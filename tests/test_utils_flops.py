"""Tests for the FLOP-count estimates."""

import pytest

from repro.utils import flops


class TestPrimitiveCounts:
    def test_dot(self):
        assert flops.dot_flops(10) == 20.0

    def test_axpy(self):
        assert flops.axpy_flops(10) == 20.0

    def test_gemv(self):
        assert flops.gemv_flops(3, 4) == 24.0

    def test_gemm(self):
        assert flops.gemm_flops(2, 3, 4) == 48.0


class TestSoftmaxCounts:
    def test_gradient_costs_more_than_value(self):
        v = flops.softmax_objective_flops(100, 20, 5)
        g = flops.softmax_gradient_flops(100, 20, 5)
        assert g > v > 0

    def test_hvp_within_factor_of_gradient(self):
        g = flops.softmax_gradient_flops(1000, 50, 10)
        h = flops.softmax_hvp_flops(1000, 50, 10)
        assert 0.3 * g < h < 3.0 * g

    def test_scaling_linear_in_samples(self):
        one = flops.softmax_gradient_flops(100, 20, 5)
        ten = flops.softmax_gradient_flops(1000, 20, 5)
        assert ten == pytest.approx(10 * one, rel=0.01)

    def test_binary_class_edge_case(self):
        assert flops.softmax_objective_flops(10, 5, 2) > 0

    def test_fused_between_gradient_and_composed_sum(self):
        """Fused value+gradient shares the forward pass: costlier than the
        gradient alone, strictly cheaper than value + gradient."""
        n, p, c = 1000, 50, 10
        v = flops.softmax_objective_flops(n, p, c)
        g = flops.softmax_gradient_flops(n, p, c)
        vg = flops.softmax_value_and_gradient_flops(n, p, c)
        assert g < vg < v + g

    @pytest.mark.parametrize("n,p,c", [(1, 1, 2), (10, 3, 3), (500, 100, 20)])
    def test_all_positive(self, n, p, c):
        assert flops.softmax_objective_flops(n, p, c) > 0
        assert flops.softmax_gradient_flops(n, p, c) > 0
        assert flops.softmax_value_and_gradient_flops(n, p, c) > 0
        assert flops.softmax_hvp_flops(n, p, c) > 0
