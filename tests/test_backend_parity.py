"""Backend parity: every available backend must reproduce the NumPy numbers.

The suite is parametrized over all *available* optional backends (CuPy /
Torch when installed) plus the always-available
:class:`~repro.backend.testing.TracingBackend` double, which computes with
NumPy semantics while recording every dispatch — so the seam is exercised in
CI even on machines with no GPU libraries.  Optional backends that cannot be
imported are skipped cleanly, never failed.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.admm.newton_admm import NewtonADMM
from repro.backend import (
    BackendUnavailableError,
    available_backends,
    backend_available,
    default_backend,
    get_backend,
    infer_backend,
    set_default_backend,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.testing import TracingBackend
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.objectives.hinge import MulticlassSquaredHinge
from repro.objectives.logistic import BinaryLogistic
from repro.objectives.softmax import SoftmaxCrossEntropy

#: optional accelerator backends probed for availability at collection time
OPTIONAL_BACKENDS = ["cupy", "torch"]

PARITY_BACKENDS = [pytest.param("tracing", id="tracing")] + [
    pytest.param(
        name,
        id=name,
        marks=pytest.mark.skipif(
            not backend_available(name), reason=f"{name} not installed"
        ),
    )
    for name in OPTIONAL_BACKENDS
]


def _make_backend(name):
    if name == "tracing":
        return TracingBackend()
    return get_backend(name)


def _rng_problem(n=80, p=6, c=3, seed=0, sparse=False):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, p))
    if sparse:
        X[X < 0.5] = 0.0
        X = sp.csr_matrix(X)
    y = rng.integers(0, c, size=n)
    y[:c] = np.arange(c)  # every class present
    return X, y


OBJECTIVES = {
    "softmax": lambda X, y, backend: SoftmaxCrossEntropy(X, y, 3, backend=backend),
    "hinge_ovr": lambda X, y, backend: MulticlassSquaredHinge(
        X, y, 3, backend=backend
    ),
    "logistic": lambda X, y, backend: BinaryLogistic(
        X, (y > 0).astype(np.int64), backend=backend
    ),
}


@pytest.mark.parametrize("backend_name", PARITY_BACKENDS)
@pytest.mark.parametrize("sparse", [False, True], ids=["dense", "csr"])
@pytest.mark.parametrize("objective_name", sorted(OBJECTIVES))
class TestObjectiveParity:
    """Value, gradient and HVP agree across backends on dense and CSR data."""

    def _pair(self, objective_name, sparse, backend_name):
        X, y = _rng_problem(sparse=sparse)
        make = OBJECTIVES[objective_name]
        reference = make(X, y, None)
        backend = _make_backend(backend_name)
        candidate = make(X, y, backend)
        return reference, candidate, backend

    def test_value_parity(self, objective_name, sparse, backend_name):
        reference, candidate, backend = self._pair(objective_name, sparse, backend_name)
        w = np.random.default_rng(1).standard_normal(reference.dim) * 0.1
        ref = reference.value(w)
        got = candidate.value(backend.asarray(w))
        assert got == pytest.approx(ref, abs=1e-6, rel=1e-6)

    def test_gradient_parity(self, objective_name, sparse, backend_name):
        reference, candidate, backend = self._pair(objective_name, sparse, backend_name)
        w = np.random.default_rng(2).standard_normal(reference.dim) * 0.1
        ref = reference.gradient(w)
        got = backend.to_numpy(candidate.gradient(backend.asarray(w)))
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=1e-6)

    def test_hvp_parity(self, objective_name, sparse, backend_name):
        reference, candidate, backend = self._pair(objective_name, sparse, backend_name)
        rng = np.random.default_rng(3)
        w = rng.standard_normal(reference.dim) * 0.1
        v = rng.standard_normal(reference.dim)
        ref = reference.hvp(w, v)
        got = backend.to_numpy(candidate.hvp(backend.asarray(w), backend.asarray(v)))
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=1e-6)


class TestDispatchSeam:
    """The tracing double proves the hot path goes through the backend."""

    def test_softmax_dispatches_through_backend(self):
        X, y = _rng_problem()
        backend = TracingBackend()
        obj = SoftmaxCrossEntropy(X, y, 3, backend=backend)
        assert backend.calls["asarray_data"] == 1
        backend.reset()
        w = np.zeros(obj.dim)
        obj.value(w)
        assert backend.calls["exp"] >= 1  # log-sum-exp ran through xp
        assert backend.calls["asarray"] >= 1  # check_weights ran through backend
        backend.reset()
        obj.gradient(w)
        assert backend.calls["exp"] >= 1
        backend.reset()
        obj.hvp(w, np.ones(obj.dim))
        assert backend.calls["sum"] >= 1

    def test_tracing_matches_numpy_bitwise(self):
        X, y = _rng_problem()
        w = np.random.default_rng(7).standard_normal((3 - 1) * X.shape[1]) * 0.1
        ref = SoftmaxCrossEntropy(X, y, 3).gradient(w)
        got = SoftmaxCrossEntropy(X, y, 3, backend=TracingBackend()).gradient(w)
        np.testing.assert_array_equal(got, ref)

    def test_predict_caches_converted_eval_matrix(self):
        # The per-epoch trace recorder calls predict(w, test.X) every epoch;
        # on non-NumPy backends the converted matrix must be cached so the
        # data is not re-transferred to the device each time.
        X, y = _rng_problem()
        backend = TracingBackend()
        obj = SoftmaxCrossEntropy(X, y, 3, backend=backend)
        w = np.zeros(obj.dim)
        X_eval = X[:5].copy()
        backend.reset()
        first = obj.predict_proba(w, X_eval)
        converts = backend.calls["asarray_data"]
        assert converts == 1
        second = obj.predict_proba(w, X_eval)
        assert backend.calls["asarray_data"] == converts  # cache hit
        np.testing.assert_array_equal(first, second)
        # A different matrix object misses the single-entry cache.
        obj.predict_proba(w, X[:5].copy())
        assert backend.calls["asarray_data"] == converts + 1

    def test_predict_cache_disabled_on_numpy(self):
        X, y = _rng_problem()
        obj = SoftmaxCrossEntropy(X, y, 3)
        w = np.zeros(obj.dim)
        X_eval = X[:5].copy()
        obj.predict_proba(w, X_eval)
        assert not hasattr(obj, "_eval_matrix_cache")


class TestRegistry:
    def test_auto_falls_back_to_numpy_when_accelerators_missing(self):
        missing = [n for n in OPTIONAL_BACKENDS if not backend_available(n)]
        backend = get_backend("auto")
        if len(missing) == len(OPTIONAL_BACKENDS):
            assert isinstance(backend, NumpyBackend)
            assert backend.name == "numpy"
        else:  # pragma: no cover - machines with cupy/torch installed
            # An installed but CPU-only library must not displace numpy.
            if backend.name in OPTIONAL_BACKENDS:
                assert backend.is_accelerator()
            else:
                assert backend.name == "numpy"

    def test_unknown_backend_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("tpu")

    def test_missing_backend_raises_unavailable(self):
        for name in OPTIONAL_BACKENDS:
            if not backend_available(name):
                with pytest.raises(BackendUnavailableError):
                    get_backend(name)

    def test_available_backends_reports_numpy(self):
        availability = available_backends()
        assert availability["numpy"] is True

    def test_instance_passthrough_and_default(self):
        backend = TracingBackend()
        assert get_backend(backend) is backend
        assert default_backend().name == "numpy"

    def test_set_default_backend_roundtrip(self):
        try:
            chosen = set_default_backend("auto")
            assert default_backend() is chosen
        finally:
            set_default_backend("numpy")
        assert default_backend().name == "numpy"

    def test_infer_backend_numpy(self):
        assert infer_backend(np.ones(3)).name == "numpy"
        assert infer_backend([1.0, 2.0]).name == "numpy"


class TestEndToEndParity:
    """NewtonADMM.fit runs identically through the dispatch seam (and on any
    real optional backend) — the acceptance bar for the backend refactor."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return make_multiclass_gaussian(
            300, 10, 3, condition_number=5.0, class_separation=2.0, random_state=0
        )

    def _fit(self, dataset, backend):
        cluster = SimulatedCluster(dataset, 4, backend=backend, random_state=0)
        solver = NewtonADMM(lam=1e-4, max_epochs=5, record_accuracy=False)
        return solver.fit(cluster)

    def test_newton_admm_tracing_matches_numpy(self, dataset):
        reference = self._fit(dataset, None)
        backend = TracingBackend()
        traced = self._fit(dataset, backend)
        np.testing.assert_allclose(
            traced.final_w, reference.final_w, atol=1e-6, rtol=0
        )
        assert traced.records[-1].objective == pytest.approx(
            reference.records[-1].objective, abs=1e-10
        )
        # The per-worker x-updates must actually have dispatched through the
        # injected backend.
        assert backend.total_calls() > 0
        assert backend.calls["exp"] > 0

    @pytest.mark.parametrize(
        "backend_name",
        [
            pytest.param(
                name,
                marks=pytest.mark.skipif(
                    not backend_available(name), reason=f"{name} not installed"
                ),
            )
            for name in OPTIONAL_BACKENDS
        ],
    )
    def test_newton_admm_optional_backend_matches_numpy(self, dataset, backend_name):
        reference = self._fit(dataset, None)
        result = self._fit(dataset, backend_name)
        np.testing.assert_allclose(
            result.final_w, reference.final_w, atol=1e-6, rtol=1e-6
        )

    def test_cluster_describe_reports_backend(self, dataset):
        cluster = SimulatedCluster(dataset, 2, backend=TracingBackend(), random_state=0)
        assert cluster.describe()["backend"] == "tracing"


class TestBackendPropagation:
    """Backend inheritance through wrappers and into the baselines."""

    def test_regularizer_adopts_backend_through_wrapper_loss(self):
        from repro.objectives.base import RegularizedObjective, ScaledObjective
        from repro.objectives.regularizers import L2Regularizer

        X, y = _rng_problem()
        backend = TracingBackend()
        loss = ScaledObjective(SoftmaxCrossEntropy(X, y, 3, backend=backend), 2.0)
        reg = L2Regularizer(loss.dim, 1e-3)
        composite = RegularizedObjective(loss, reg)
        assert composite.backend is backend
        assert reg.backend is backend

    def test_sync_sgd_baseline_runs_on_injected_backend(self):
        from repro.baselines.sync_sgd import SynchronousSGD

        train = make_multiclass_gaussian(
            200, 8, 3, condition_number=5.0, class_separation=2.0, random_state=0
        )
        backend = TracingBackend()
        cluster = SimulatedCluster(train, 2, backend=backend, random_state=0)
        trace = SynchronousSGD(
            lam=1e-4, max_epochs=2, batch_size=32, record_accuracy=False
        ).fit(cluster)
        assert len(trace.records) == 2
        # The local mini-batch losses must have been built on the cluster's
        # backend, not silently on NumPy.
        for worker in cluster.workers:
            assert worker.state["local_mean_loss"].backend is backend


class TestHostInputValidation:
    """Host data (dense or sparse) keeps full check_array validation even
    though accelerator-native arrays are trusted."""

    @pytest.mark.parametrize("objective_name", sorted(OBJECTIVES))
    def test_sparse_nan_rejected(self, objective_name):
        X, y = _rng_problem(sparse=True)
        X = X.copy()
        X.data[0] = np.nan
        with pytest.raises(ValueError, match="NaN or Inf"):
            OBJECTIVES[objective_name](X, y, None)

    def test_dense_nan_rejected(self):
        X, y = _rng_problem()
        X = X.copy()
        X[0, 0] = np.inf
        with pytest.raises(ValueError, match="NaN or Inf"):
            SoftmaxCrossEntropy(X, y, 3)

    def test_integer_sparse_coerced_to_float(self):
        X = sp.csr_matrix(np.eye(6, dtype=np.int64))
        y = np.array([0, 1, 2, 0, 1, 2])
        obj = SoftmaxCrossEntropy(X, y, 3)
        assert obj.X.dtype == np.float64

    def test_integer_allreduce_still_sums_as_float(self):
        from repro.distributed.comm import Communicator
        from repro.distributed.network import infiniband_100g
        from repro.utils.timer import SimulatedClock

        comm = Communicator(2, infiniband_100g(), SimulatedClock())
        total = comm.allreduce([np.array([1, 2]), np.array([0.5, 0.5])])
        np.testing.assert_allclose(total, [1.5, 2.5])
        assert total.dtype == np.float64

    def test_mixed_precision_allreduce_accumulates_in_float64(self):
        from repro.distributed.comm import Communicator
        from repro.distributed.network import infiniband_100g
        from repro.utils.timer import SimulatedClock

        comm = Communicator(2, infiniband_100g(), SimulatedClock())
        total = comm.allreduce(
            [np.ones(2, dtype=np.float32), np.full(2, 1e-9, dtype=np.float64)]
        )
        assert total.dtype == np.float64
        np.testing.assert_allclose(total, [1.0 + 1e-9, 1.0 + 1e-9], rtol=0)

    def test_float32_host_data_stays_float32(self):
        X, y = _rng_problem()
        obj = SoftmaxCrossEntropy(X.astype(np.float32), y, 3)
        assert obj.X.dtype == np.float32
        assert obj._indicator.dtype == np.float32
        w0 = obj.initial_point()
        assert w0.dtype == np.float32
        assert obj.gradient(w0).dtype == np.float32

    def test_cg_accepts_bare_callable_returning_list(self):
        from repro.linalg.cg import conjugate_gradient

        result = conjugate_gradient(
            lambda v: list(2.0 * np.asarray(v)), np.ones(3), tol=1e-10, max_iter=10
        )
        assert result.converged
        np.testing.assert_allclose(result.x, 0.5 * np.ones(3))


class TestMixedPrecisionInterplay:
    """float32 weights against float64-validated data must not crash."""

    def test_hessian_operator_accepts_float32_weights(self):
        from repro.linalg.cg import conjugate_gradient
        from repro.linalg.operators import HessianOperator
        from repro.objectives.least_squares import LeastSquares

        rng = np.random.default_rng(0)
        obj = LeastSquares(rng.standard_normal((30, 5)), rng.standard_normal(30))
        w = np.zeros(obj.dim, dtype=np.float32)
        op = HessianOperator(obj, w)
        result = conjugate_gradient(op, -obj.gradient(w), tol=1e-8, max_iter=50)
        assert result.converged
        assert result.x.dtype == np.float64  # follows the objective's data

    def test_jacobi_preconditioner_usable_in_cg(self):
        from repro.linalg.cg import conjugate_gradient
        from repro.linalg.operators import HessianOperator
        from repro.linalg.preconditioners import make_preconditioner
        from repro.objectives.least_squares import LeastSquares

        rng = np.random.default_rng(1)
        obj = LeastSquares(rng.standard_normal((40, 6)), rng.standard_normal(40))
        w = np.zeros(obj.dim)
        prec = make_preconditioner("jacobi", obj, w, damping=1e-3, random_state=0)
        result = conjugate_gradient(
            HessianOperator(obj, w),
            -obj.gradient(w),
            preconditioner=prec,
            tol=1e-8,
            max_iter=50,
        )
        assert result.converged


class TestCLI:
    def test_backends_command_lists_numpy_default(self):
        from repro.harness.cli import main

        lines = []
        assert main(["backends"], print_fn=lines.append) == 0
        joined = "\n".join(lines)
        assert "numpy" in joined and "yes" in joined

    def test_run_accepts_backend_flag(self):
        from repro.harness.cli import build_parser

        args = build_parser().parse_args(
            ["run", "table1", "--backend", "auto", "--no-plot"]
        )
        assert args.backend == "auto"
