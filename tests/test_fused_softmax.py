"""Fused softmax hot paths: the per-iterate forward cache and transfer audit.

Pins the perf contracts of the kernel-speed pass with
:class:`~repro.backend.testing.TracingBackend` operation counts rather than
wall-clock: one forward pass (logits GEMM + softmax) per *distinct iterate*
no matter how many value/gradient/HVP calls hit it, bit-identical results to
the uncached composed path, and exactly one device-to-host transfer per
``predict`` / ``predict_proba`` call.
"""

from __future__ import annotations

import numpy as np

from repro.backend.testing import TracingBackend
from repro.objectives.base import RegularizedObjective
from repro.objectives.logistic import BinaryLogistic
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy

#: xp ufuncs only the softmax forward pass issues — their counts proxy
#: "number of forward passes" without depending on GEMM tracing.
FORWARD_OPS = ("exp", "log")


def _problem(n=90, p=7, c=4, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, p))
    y = rng.integers(0, c, size=n)
    y[:c] = np.arange(c)
    return X, y


def _forward_count(backend):
    return sum(backend.calls[op] for op in FORWARD_OPS)


class TestPerIterateCache:
    def test_one_forward_pass_per_distinct_iterate(self):
        """value + gradient + many HVPs at one iterate: one forward pass."""
        X, y = _problem()
        bk = TracingBackend()
        obj = SoftmaxCrossEntropy(X, y, 4, backend=bk)
        rng = np.random.default_rng(1)
        w = obj.check_weights(bk.asarray(rng.standard_normal(obj.dim) * 0.1))

        bk.reset()
        value, grad, hvp_op = obj.value_and_gradient_and_hvp_operator(w)
        after_fused = _forward_count(bk)
        assert after_fused > 0  # the forward pass did run

        for _ in range(4):
            hvp_op.matvec(rng.standard_normal(obj.dim))
        obj.value(w)
        obj.gradient(w)
        obj.hvp(w, rng.standard_normal(obj.dim))
        assert _forward_count(bk) == after_fused, (
            "repeated calls at a cached iterate recomputed the softmax forward"
        )

        # A distinct iterate invalidates the cache and pays one new forward.
        w2 = obj.check_weights(bk.asarray(rng.standard_normal(obj.dim) * 0.1))
        obj.gradient(w2)
        assert _forward_count(bk) > after_fused

    def test_fused_ops_strictly_fewer_than_composed(self):
        """The tentpole acceptance: fused value+gradient+HVP issues strictly
        fewer backend operations than the composed cache-busted calls."""
        X, y = _problem()
        rng = np.random.default_rng(2)
        vs = [rng.standard_normal(7 * 3) for _ in range(3)]

        bk_f = TracingBackend()
        fused_obj = SoftmaxCrossEntropy(X, y, 4, backend=bk_f)
        w = fused_obj.check_weights(
            bk_f.asarray(rng.standard_normal(fused_obj.dim) * 0.1)
        )
        bk_f.reset()
        _, _, hvp_op = fused_obj.value_and_gradient_and_hvp_operator(w)
        for v in vs:
            hvp_op.matvec(v)
        fused_ops = bk_f.total_calls()

        bk_c = TracingBackend()
        composed_obj = SoftmaxCrossEntropy(X, y, 4, backend=bk_c)
        wc = composed_obj.check_weights(bk_c.asarray(np.asarray(w)))
        bk_c.reset()
        composed_obj._iterate_cache = None
        composed_obj.value(wc)
        composed_obj._iterate_cache = None
        composed_obj.gradient(wc)
        for v in vs:
            composed_obj._iterate_cache = None
            composed_obj.hvp(wc, v)
        composed_ops = bk_c.total_calls()

        assert fused_ops < composed_ops

    def test_cached_results_bit_identical_to_fresh_objective(self):
        """The cache only skips recomputation — it may not change a bit."""
        X, y = _problem()
        rng = np.random.default_rng(3)
        cached = SoftmaxCrossEntropy(X, y, 4)
        fresh = SoftmaxCrossEntropy(X, y, 4)
        w = rng.standard_normal(cached.dim) * 0.1
        v = rng.standard_normal(cached.dim)

        # Warm the cache through every path, in value-first order.
        cv, cg = cached.value_and_gradient(w)
        ch = cached.hvp(w, v)
        # Fresh objective, separate calls, gradient-first order.
        fg = fresh.gradient(w)
        fh = fresh.hvp(w, v)
        fv = fresh.value(w)

        assert cv == fv
        np.testing.assert_array_equal(cg, fg)
        np.testing.assert_array_equal(ch, fh)

    def test_cache_invalidation_across_iterates(self):
        """Interleaved calls at alternating iterates stay correct."""
        X, y = _problem()
        rng = np.random.default_rng(4)
        obj = SoftmaxCrossEntropy(X, y, 4)
        ref = SoftmaxCrossEntropy(X, y, 4)
        w1 = rng.standard_normal(obj.dim) * 0.1
        w2 = rng.standard_normal(obj.dim) * 0.1
        for w in (w1, w2, w1, w2):
            np.testing.assert_array_equal(obj.gradient(w), ref.gradient(w))
            assert obj.value(w) == ref.value(w)

    def test_value_does_not_materialize_probabilities(self):
        """Line-search trials need log-sum-exp only; the (n, C-1) probability
        matrix must not be computed until a gradient or HVP asks for it."""
        X, y = _problem()
        bk = TracingBackend()
        obj = SoftmaxCrossEntropy(X, y, 4, backend=bk)
        w = obj.check_weights(bk.asarray(np.zeros(obj.dim)))
        obj.value(w)
        assert "P" not in obj._iterate_cache
        obj.gradient(w)
        assert "P" in obj._iterate_cache

    def test_wrapped_objective_shares_the_cache(self):
        """RegularizedObjective passes the same iterate object down, so the
        solver-visible wrapper chain still gets one forward pass."""
        X, y = _problem()
        bk = TracingBackend()
        loss = SoftmaxCrossEntropy(X, y, 4, backend=bk)
        obj = RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-3))
        rng = np.random.default_rng(5)
        w = loss.check_weights(bk.asarray(rng.standard_normal(obj.dim) * 0.1))
        bk.reset()
        _, _, hvp_op = obj.value_and_gradient_and_hvp_operator(w)
        baseline = _forward_count(bk)
        hvp_op.matvec(rng.standard_normal(obj.dim))
        hvp_op.matvec(rng.standard_normal(obj.dim))
        assert _forward_count(bk) == baseline


class TestSingleTransferPredictions:
    """S2: prediction paths cross the device boundary exactly once."""

    def test_softmax_predict_one_transfer(self):
        X, y = _problem()
        bk = TracingBackend()
        obj = SoftmaxCrossEntropy(X, y, 4, backend=bk)
        w = np.zeros(obj.dim)
        bk.reset()
        labels = obj.predict(w)
        assert bk.calls["to_numpy"] == 1
        assert labels.shape == (X.shape[0],) and labels.dtype == np.int64

    def test_softmax_predict_proba_one_transfer(self):
        X, y = _problem()
        bk = TracingBackend()
        obj = SoftmaxCrossEntropy(X, y, 4, backend=bk)
        bk.reset()
        probs = obj.predict_proba(np.zeros(obj.dim))
        assert bk.calls["to_numpy"] == 1
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_softmax_predict_on_eval_matrix_one_transfer(self):
        X, y = _problem()
        X_eval, _ = _problem(n=30, seed=9)
        bk = TracingBackend()
        obj = SoftmaxCrossEntropy(X, y, 4, backend=bk)
        obj.predict(np.zeros(obj.dim), X_eval)  # first call converts X_eval
        bk.reset()
        obj.predict(np.zeros(obj.dim), X_eval)  # cached eval matrix
        assert bk.calls["to_numpy"] == 1

    def test_logistic_predict_one_transfer(self):
        rng = np.random.default_rng(6)
        X = rng.standard_normal((60, 5))
        y = (rng.standard_normal(60) > 0).astype(np.int64)
        bk = TracingBackend()
        obj = BinaryLogistic(X, y, backend=bk)
        bk.reset()
        obj.predict(np.zeros(obj.dim))
        assert bk.calls["to_numpy"] == 1

    def test_predict_matches_host_argmax(self):
        """The device-side argmax returns the same labels the old host-side
        ``np.argmax(predict_proba(...))`` did."""
        X, y = _problem()
        obj = SoftmaxCrossEntropy(X, y, 4)
        rng = np.random.default_rng(7)
        w = rng.standard_normal(obj.dim) * 0.3
        np.testing.assert_array_equal(
            obj.predict(w), np.argmax(obj.predict_proba(w), axis=1)
        )
