"""Property-based tests for the schedule IR, diff, and overlap proposer.

Random *legal* round plans are generated from a small grammar of executable
segments and pushed through the structural diff and the tuner's overlap
proposer:

- ``diff_plans(p, p)`` is empty and prices to a zero modelled delta;
- ``diff_plans(a, b)`` mirrors ``diff_plans(b, a)`` entry for entry
  (symmetric up to direction);
- every proposer rewrite passes the executor's in-flight guard and preserves
  the declared round and collective counts.

The hypothesis profile is bounded (capped ``max_examples``, deadline
disabled) so the suite stays inside the fast tier's budget; see
``pyproject.toml``'s ``test`` extra and ``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402

from repro.datasets.synthetic import make_multiclass_gaussian  # noqa: E402
from repro.distributed.autotune import propose_overlap  # noqa: E402
from repro.distributed.cluster import SimulatedCluster  # noqa: E402
from repro.distributed.schedule import (  # noqa: E402
    Collective,
    Join,
    execute_plan,
    iter_steps,
    step_signature,
)
from repro.distributed.schedule_diff import (  # noqa: E402
    ClusterProfile,
    diff_plans,
    estimate_plan_time,
)

from plan_grammar import round_plans  # noqa: E402

#: bounded profile for the whole module — property tests must stay fast
BOUNDED = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

_DATASET = make_multiclass_gaussian(120, 6, 3, class_separation=2.0, random_state=0)
_PROFILE = ClusterProfile(n_workers=4)


def _cluster() -> SimulatedCluster:
    return SimulatedCluster(_DATASET, 4, engine="event", random_state=0)


# ---------------------------------------------------------------------------
# Generated plans really are legal
# ---------------------------------------------------------------------------
@BOUNDED
@given(plan=round_plans())
def test_generated_plans_execute(plan):
    execution = execute_plan(_cluster(), plan)
    assert execution.rounds == plan.declared_rounds
    assert execution.collectives == plan.declared_collectives


# ---------------------------------------------------------------------------
# Diff properties
# ---------------------------------------------------------------------------
@BOUNDED
@given(plan=round_plans())
def test_diff_with_itself_is_empty(plan):
    diff = diff_plans(plan, plan, _PROFILE)
    assert diff.is_empty
    assert not diff.entries and not diff.header
    assert diff.modelled_delta == 0.0


@BOUNDED
@given(plan=round_plans())
def test_diff_with_structural_copy_is_empty(plan):
    assert diff_plans(plan, plan.structural_copy()).is_empty


@BOUNDED
@given(a=round_plans(), b=round_plans())
def test_diff_is_symmetric_up_to_direction(a, b):
    fwd = diff_plans(a, b, _PROFILE)
    rev = diff_plans(b, a, _PROFILE)
    assert fwd.is_empty == rev.is_empty
    assert len(fwd.entries) == len(rev.entries)
    flipped = {"added": "removed", "removed": "added", "changed": "changed"}
    by_index = {(e.kind, e.index) for e in rev.entries}
    for entry in fwd.entries:
        assert (flipped[entry.kind], entry.index) in by_index
    rev_entries = {e.index: e for e in rev.entries}
    for entry in fwd.entries:
        mirror = rev_entries[entry.index]
        assert mirror.a == entry.b and mirror.b == entry.a
        if entry.kind == "changed":
            assert mirror.fields == {
                k: (vb, va) for k, (va, vb) in entry.fields.items()
            }
    assert set(fwd.header) == set(rev.header)
    for key, vals in fwd.header.items():
        assert rev.header[key] == {"a": vals["b"], "b": vals["a"]}
    if fwd.modelled_delta is not None:
        assert rev.modelled_delta == pytest.approx(-fwd.modelled_delta)


@BOUNDED
@given(plan=round_plans())
def test_signature_is_stable_across_structural_copy(plan):
    assert plan.signature() == plan.structural_copy().signature()


# ---------------------------------------------------------------------------
# Proposer properties
# ---------------------------------------------------------------------------
@BOUNDED
@given(plan=round_plans())
def test_proposed_rewrites_pass_the_in_flight_guard(plan):
    proposal = propose_overlap(plan, verify_on=_cluster(), profile=_PROFILE)
    assert proposal.verified
    # The rewritten plan executes cleanly on a fresh cluster: the guard is
    # the legality oracle, and it has no objection.
    execution = execute_plan(_cluster(), proposal.proposed)
    assert execution.rounds == proposal.proposed.declared_rounds


@BOUNDED
@given(plan=round_plans())
def test_proposals_preserve_declared_counts(plan):
    proposal = propose_overlap(plan, verify_on=_cluster())
    assert proposal.proposed.declared_rounds == plan.declared_rounds
    assert proposal.proposed.declared_collectives == plan.declared_collectives
    # Overlap never *removes* steps: flattened length can only grow (Joins).
    n_before = len(list(iter_steps(plan.steps)))
    n_after = len(list(iter_steps(proposal.proposed.steps)))
    assert n_after >= n_before
    applied = {c["name"] for c in proposal.candidates if c["status"] == "proposed"}
    now_overlapped = {
        step.name
        for step in iter_steps(proposal.proposed.steps)
        if isinstance(step, Collective) and step.overlap
    }
    assert applied <= now_overlapped


@BOUNDED
@given(plan=round_plans())
def test_proposals_only_add_joins_and_overlap_flags(plan):
    proposal = propose_overlap(plan, verify_on=_cluster())
    originals = [
        step_signature(s)
        for s in iter_steps(plan.steps)
        if not isinstance(s, Join)
    ]
    rewritten = [
        step_signature(s)
        for s in iter_steps(proposal.proposed.steps)
        if not isinstance(s, Join)
    ]
    assert len(originals) == len(rewritten)
    for before, after in zip(originals, rewritten):
        if before[0] == "collective":
            # Signatures match except possibly the overlap flag (index 4).
            assert before[:4] == after[:4] and before[5:] == after[5:]
        else:
            assert before == after


@BOUNDED
@given(plan=round_plans())
def test_estimates_never_price_proposals_higher(plan):
    proposal = propose_overlap(plan, verify_on=_cluster(), profile=_PROFILE)
    before = estimate_plan_time(plan, _PROFILE)
    after = estimate_plan_time(proposal.proposed, _PROFILE)
    assert after.seconds <= before.seconds + 1e-12
