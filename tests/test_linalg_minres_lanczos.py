"""Tests for MINRES, Lanczos spectrum estimation, preconditioners and sketches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.lanczos import (
    lanczos,
    lanczos_condition_estimate,
    lanczos_extreme_eigenvalues,
    spectral_norm_estimate,
)
from repro.linalg.minres import minres
from repro.linalg.operators import HessianOperator, MatrixOperator
from repro.linalg.preconditioners import (
    RegularizerPreconditioner,
    estimate_hessian_diagonal,
    hessian_jacobi_preconditioner,
    jacobi_preconditioner,
    make_preconditioner,
)
from repro.linalg.cg import conjugate_gradient
from repro.linalg.sketching import (
    count_sketch,
    gaussian_sketch,
    row_sampling_sketch,
    sketch_matrix,
    srht_sketch,
)
from repro.objectives.base import RegularizedObjective
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy


def random_spd(dim, cond=10.0, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    eigs = np.logspace(0, np.log10(cond), dim)
    return Q @ np.diag(eigs) @ Q.T


def random_symmetric_indefinite(dim, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    eigs = np.linspace(-3.0, 5.0, dim)
    eigs[np.abs(eigs) < 0.5] = 0.5  # keep it nonsingular
    return Q @ np.diag(eigs) @ Q.T


def small_softmax_objective(lam=1e-2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((40, 6))
    y = rng.integers(0, 3, size=40)
    loss = SoftmaxCrossEntropy(X, y, 3)
    return RegularizedObjective(loss, L2Regularizer(loss.dim, lam))


class TestMINRES:
    def test_solves_spd_system(self):
        A = random_spd(12, cond=50.0)
        b = np.random.default_rng(1).standard_normal(12)
        result = minres(MatrixOperator(A), b, tol=1e-10, max_iter=100)
        assert result.converged
        np.testing.assert_allclose(result.x, np.linalg.solve(A, b), atol=1e-6)

    def test_solves_indefinite_system(self):
        A = random_symmetric_indefinite(10, seed=3)
        b = np.random.default_rng(2).standard_normal(10)
        result = minres(A.__matmul__, b, tol=1e-10, max_iter=200)
        assert result.converged
        np.testing.assert_allclose(result.x, np.linalg.solve(A, b), atol=1e-6)

    def test_zero_rhs(self):
        A = random_spd(5)
        result = minres(MatrixOperator(A), np.zeros(5))
        assert result.converged
        assert result.n_iterations == 0
        np.testing.assert_array_equal(result.x, np.zeros(5))

    def test_early_stopping_respects_budget(self):
        A = random_spd(30, cond=1e4, seed=5)
        b = np.random.default_rng(3).standard_normal(30)
        result = minres(MatrixOperator(A), b, tol=1e-14, max_iter=3)
        assert result.n_iterations <= 3

    def test_warm_start_from_solution_converges_immediately(self):
        A = random_spd(8)
        b = np.random.default_rng(4).standard_normal(8)
        x_star = np.linalg.solve(A, b)
        result = minres(MatrixOperator(A), b, x0=x_star, tol=1e-8)
        assert result.converged
        assert result.n_iterations == 0

    def test_residual_history_decreases(self):
        A = random_spd(15, cond=100.0, seed=7)
        b = np.random.default_rng(5).standard_normal(15)
        result = minres(MatrixOperator(A), b, tol=0.0, max_iter=15)
        history = np.asarray(result.residual_history)
        # MINRES residual norms are monotonically non-increasing.
        assert np.all(np.diff(history) <= 1e-9)

    def test_invalid_arguments(self):
        A = MatrixOperator(np.eye(3))
        with pytest.raises(ValueError):
            minres(A, np.ones(3), max_iter=-1)
        with pytest.raises(ValueError):
            minres(A, np.ones(3), tol=-1.0)

    def test_matches_cg_on_spd(self):
        A = random_spd(10, cond=30.0, seed=11)
        b = np.random.default_rng(6).standard_normal(10)
        cg = conjugate_gradient(MatrixOperator(A), b, tol=1e-12, max_iter=200)
        mr = minres(MatrixOperator(A), b, tol=1e-12, max_iter=200)
        np.testing.assert_allclose(cg.x, mr.x, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 12))
    def test_property_residual_below_tolerance(self, seed, dim):
        A = random_spd(dim, cond=20.0, seed=seed)
        b = np.random.default_rng(seed + 1).standard_normal(dim)
        result = minres(MatrixOperator(A), b, tol=1e-8, max_iter=10 * dim)
        assert result.converged
        assert result.residual_norm <= 1e-8 * np.linalg.norm(b) + 1e-12


class TestLanczos:
    def test_tridiagonal_shape(self):
        A = MatrixOperator(random_spd(20, cond=100.0))
        result = lanczos(A, max_iter=8, random_state=0)
        T = result.tridiagonal()
        assert T.shape == (result.n_iterations, result.n_iterations)
        np.testing.assert_allclose(T, T.T)

    def test_full_run_recovers_spectrum(self):
        A_dense = random_spd(10, cond=50.0, seed=2)
        result = lanczos(MatrixOperator(A_dense), max_iter=10, random_state=0)
        ritz = np.sort(result.ritz_values())
        eigs = np.sort(np.linalg.eigvalsh(A_dense))
        np.testing.assert_allclose(ritz, eigs, rtol=1e-6)

    def test_extreme_eigenvalues_bracket_spectrum(self):
        A_dense = random_spd(30, cond=1e3, seed=3)
        lo, hi = lanczos_extreme_eigenvalues(
            MatrixOperator(A_dense), max_iter=25, random_state=1
        )
        eigs = np.linalg.eigvalsh(A_dense)
        # Ritz values are interior approximations of the spectrum.
        assert lo >= eigs.min() - 1e-8
        assert hi <= eigs.max() + 1e-8
        # And the largest one converges quickly.
        assert hi == pytest.approx(eigs.max(), rel=1e-3)

    def test_condition_estimate_close_to_truth(self):
        A_dense = random_spd(12, cond=200.0, seed=4)
        estimate = lanczos_condition_estimate(
            MatrixOperator(A_dense), max_iter=12, random_state=0
        )
        assert estimate == pytest.approx(200.0, rel=0.05)

    def test_spectral_norm_on_indefinite_matrix(self):
        A_dense = random_symmetric_indefinite(15, seed=8)
        est = spectral_norm_estimate(MatrixOperator(A_dense), max_iter=15, random_state=0)
        truth = np.max(np.abs(np.linalg.eigvalsh(A_dense)))
        assert est == pytest.approx(truth, rel=1e-3)

    def test_basis_orthonormal(self):
        A = MatrixOperator(random_spd(16, cond=30.0, seed=6))
        result = lanczos(A, max_iter=10, store_basis=True, random_state=0)
        V = result.basis
        assert V is not None
        np.testing.assert_allclose(V.T @ V, np.eye(V.shape[1]), atol=1e-8)

    def test_breakdown_on_identity(self):
        # On the identity the Krylov space is one-dimensional: Lanczos stops
        # after a single step regardless of the requested budget.
        result = lanczos(MatrixOperator(np.eye(7)), max_iter=5, random_state=0)
        assert result.n_iterations == 1
        assert result.ritz_values() == pytest.approx(np.ones(1))

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            lanczos(MatrixOperator(np.eye(3)), max_iter=0)

    def test_hessian_operator_condition_matches_dense(self):
        objective = small_softmax_objective(lam=1e-1)
        w = np.random.default_rng(0).standard_normal(objective.dim) * 0.1
        op = HessianOperator(objective, w)
        H = objective.hessian(w)
        est = lanczos_condition_estimate(op, max_iter=objective.dim, random_state=0)
        eigs = np.linalg.eigvalsh(H)
        assert est == pytest.approx(eigs.max() / eigs.min(), rel=0.05)


class TestPreconditioners:
    def test_diagonal_estimate_unbiased_on_diagonal_matrix(self):
        d = np.array([1.0, 2.0, 3.0, 4.0])

        class DiagObjective:
            dim = 4

            def hvp(self, w, v):
                return d * np.asarray(v)

        est = estimate_hessian_diagonal(DiagObjective(), np.zeros(4), n_probes=5, random_state=0)
        # For a diagonal operator every Rademacher probe recovers the diagonal exactly.
        np.testing.assert_allclose(est, d)

    def test_diagonal_estimate_close_on_softmax(self):
        objective = small_softmax_objective(lam=1e-2)
        w = np.zeros(objective.dim)
        est = estimate_hessian_diagonal(objective, w, n_probes=200, random_state=0)
        truth = np.diag(objective.hessian(w))
        assert np.corrcoef(est, truth)[0, 1] > 0.7

    def test_jacobi_preconditioner_inverts_diagonal(self):
        prec = jacobi_preconditioner(np.array([2.0, 4.0]), damping=0.0)
        np.testing.assert_allclose(prec.matvec(np.array([2.0, 4.0])), np.ones(2))

    def test_jacobi_floor_guards_nonpositive_entries(self):
        prec = jacobi_preconditioner(np.array([-1.0, 0.0, 1.0]), floor=1e-6)
        out = prec.matvec(np.ones(3))
        assert np.all(np.isfinite(out))
        assert np.all(out > 0)

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            jacobi_preconditioner(np.ones(3), damping=-1.0)
        with pytest.raises(ValueError):
            estimate_hessian_diagonal(small_softmax_objective(), np.zeros(12), n_probes=0)

    def test_preconditioned_cg_converges_faster_on_illconditioned_diag(self):
        d = np.logspace(0, 5, 40)
        A = np.diag(d)
        b = np.ones(40)
        plain = conjugate_gradient(MatrixOperator(A), b, tol=1e-8, max_iter=200)
        prec = conjugate_gradient(
            MatrixOperator(A),
            b,
            tol=1e-8,
            max_iter=200,
            preconditioner=jacobi_preconditioner(d),
        )
        assert prec.n_iterations < plain.n_iterations

    def test_regularizer_preconditioner(self):
        prec = RegularizerPreconditioner(5, shift=2.0)
        np.testing.assert_allclose(prec.matvec(np.full(5, 2.0)), np.ones(5))
        with pytest.raises(ValueError):
            RegularizerPreconditioner(5, shift=0.0)

    def test_make_preconditioner_dispatch(self):
        objective = small_softmax_objective()
        w = np.zeros(objective.dim)
        assert make_preconditioner(None, objective, w) is None
        assert make_preconditioner("none", objective, w) is None
        jac = make_preconditioner("jacobi", objective, w, damping=1e-2, random_state=0)
        assert jac is not None and jac.dim == objective.dim
        shift = make_preconditioner("shift", objective, w, damping=0.5)
        assert shift is not None
        with pytest.raises(ValueError):
            make_preconditioner("unknown", objective, w)

    def test_hessian_jacobi_preconditioner_dim(self):
        objective = small_softmax_objective()
        prec = hessian_jacobi_preconditioner(
            objective, np.zeros(objective.dim), n_probes=3, damping=1e-2, random_state=0
        )
        assert prec.dim == objective.dim


class TestSketching:
    @pytest.mark.parametrize("kind", ["gaussian", "count", "rows", "srht"])
    def test_shapes(self, kind):
        S = sketch_matrix(kind, 16, 50, random_state=0)
        assert S.shape == (16, 50)

    @pytest.mark.parametrize("kind", ["gaussian", "count", "rows", "srht"])
    def test_unbiased_gram_estimate(self, kind):
        # Average (S A)^T (S A) over independent sketches approaches A^T A.
        rng = np.random.default_rng(0)
        A = rng.standard_normal((60, 5))
        target = A.T @ A
        acc = np.zeros((5, 5))
        n_rep = 200
        for rep in range(n_rep):
            S = sketch_matrix(kind, 20, 60, random_state=rep)
            SA = np.asarray(S @ A)
            acc += SA.T @ SA
        acc /= n_rep
        err = np.linalg.norm(acc - target) / np.linalg.norm(target)
        assert err < 0.15

    def test_row_sampling_with_probabilities(self):
        probs = np.arange(1, 11, dtype=float)
        S = row_sampling_sketch(6, 10, probabilities=probs, random_state=0)
        assert S.shape == (6, 10)
        # Every sketch row has exactly one nonzero.
        assert S.nnz == 6

    def test_row_sampling_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            row_sampling_sketch(4, 10, probabilities=np.ones(3))
        with pytest.raises(ValueError):
            row_sampling_sketch(4, 10, probabilities=-np.ones(10))
        with pytest.raises(ValueError):
            row_sampling_sketch(4, 10, probabilities=np.zeros(10))

    def test_count_sketch_single_nonzero_per_column(self):
        S = count_sketch(8, 30, random_state=1)
        nnz_per_col = np.diff(S.tocsc().indptr)
        assert np.all(nnz_per_col == 1)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            gaussian_sketch(0, 10)
        with pytest.raises(ValueError):
            srht_sketch(4, 0)
        with pytest.raises(ValueError):
            sketch_matrix("bogus", 4, 10)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), m=st.integers(1, 12), n=st.integers(1, 40))
    def test_property_gaussian_sketch_scaling(self, seed, m, n):
        S = gaussian_sketch(m, n, random_state=seed)
        # Entries are N(0, 1/m): the Frobenius norm squared concentrates near n.
        assert S.shape == (m, n)
        assert np.isfinite(S).all()
