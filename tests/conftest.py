"""Shared fixtures for the test suite.

Everything here is intentionally tiny (hundreds of samples, a handful of
features) so the full suite stays fast; the benchmark harness covers the
larger reproduction-scale runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import ClassificationDataset, train_test_split
from repro.datasets.synthetic import (
    make_binary_margin,
    make_multiclass_gaussian,
    make_sparse_multiclass,
)
from repro.distributed.cluster import SimulatedCluster
from repro.objectives.base import RegularizedObjective
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_multiclass() -> ClassificationDataset:
    """120 samples, 6 features, 3 classes — small enough for dense Hessians."""
    return make_multiclass_gaussian(
        120, 6, 3, condition_number=5.0, class_separation=2.0, random_state=0
    )


@pytest.fixture(scope="session")
def tiny_binary() -> ClassificationDataset:
    return make_binary_margin(150, 8, margin=1.5, random_state=1)


@pytest.fixture(scope="session")
def tiny_sparse() -> ClassificationDataset:
    return make_sparse_multiclass(
        100, 300, 4, density=0.05, random_state=2
    )


@pytest.fixture(scope="session")
def small_multiclass_split():
    """A larger (but still quick) multiclass problem with a test split."""
    ds = make_multiclass_gaussian(
        600, 20, 4, condition_number=10.0, class_separation=3.0, random_state=3
    )
    return train_test_split(ds, test_size=120, random_state=3)


@pytest.fixture()
def tiny_objective(tiny_multiclass) -> RegularizedObjective:
    loss = SoftmaxCrossEntropy(
        tiny_multiclass.X, tiny_multiclass.y, tiny_multiclass.n_classes
    )
    return RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-3))


@pytest.fixture()
def small_cluster(small_multiclass_split) -> SimulatedCluster:
    train, _ = small_multiclass_split
    return SimulatedCluster(train, 4, random_state=0)


def numerical_gradient(f, w, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient used to validate analytic gradients."""
    w = np.asarray(w, dtype=np.float64)
    grad = np.zeros_like(w)
    for j in range(w.size):
        e = np.zeros_like(w)
        e[j] = eps
        grad[j] = (f(w + e) - f(w - e)) / (2 * eps)
    return grad
