"""Tests for regularizers and composite objectives (regularized / scaled /
proximally-augmented / linearly-perturbed wrappers)."""

import numpy as np
import pytest

from repro.objectives.base import (
    LinearlyPerturbedObjective,
    ProximallyAugmentedObjective,
    RegularizedObjective,
    ScaledObjective,
    resolve_scale,
)
from repro.objectives.regularizers import L2Regularizer, ZeroRegularizer
from repro.objectives.softmax import SoftmaxCrossEntropy
from tests.conftest import numerical_gradient


@pytest.fixture()
def loss():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((30, 4))
    y = rng.integers(0, 3, size=30)
    return SoftmaxCrossEntropy(X, y, 3)


class TestResolveScale:
    def test_mean(self):
        assert resolve_scale("mean", 10) == pytest.approx(0.1)

    def test_sum(self):
        assert resolve_scale("sum", 10) == 1.0

    def test_float(self):
        assert resolve_scale(0.25, 10) == 0.25

    def test_invalid_string(self):
        with pytest.raises(ValueError):
            resolve_scale("median", 10)

    def test_negative_float_rejected(self):
        with pytest.raises(ValueError):
            resolve_scale(-1.0, 10)


class TestL2Regularizer:
    def test_value(self):
        reg = L2Regularizer(4, lam=2.0)
        np.testing.assert_allclose(reg.value(np.ones(4)), 4.0)

    def test_gradient_and_hvp(self):
        reg = L2Regularizer(3, lam=0.5)
        w = np.array([1.0, -2.0, 3.0])
        np.testing.assert_allclose(reg.gradient(w), 0.5 * w)
        np.testing.assert_allclose(reg.hvp(w, np.ones(3)), 0.5 * np.ones(3))

    def test_hessian(self):
        reg = L2Regularizer(3, lam=0.1)
        np.testing.assert_allclose(reg.hessian(np.zeros(3)), 0.1 * np.eye(3))

    def test_zero_lambda_allowed(self):
        reg = L2Regularizer(3, lam=0.0)
        assert reg.value(np.ones(3)) == 0.0

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            L2Regularizer(3, lam=-1.0)

    def test_bad_dim_rejected(self):
        with pytest.raises(ValueError):
            L2Regularizer(0, lam=1.0)


class TestZeroRegularizer:
    def test_all_zero(self):
        reg = ZeroRegularizer(5)
        w = np.ones(5)
        assert reg.value(w) == 0.0
        np.testing.assert_allclose(reg.gradient(w), 0.0)
        np.testing.assert_allclose(reg.hvp(w, w), 0.0)
        np.testing.assert_allclose(reg.hessian(w), 0.0)


class TestRegularizedObjective:
    def test_value_is_sum(self, loss):
        reg = L2Regularizer(loss.dim, 0.1)
        obj = RegularizedObjective(loss, reg)
        w = np.random.default_rng(1).standard_normal(loss.dim)
        np.testing.assert_allclose(obj.value(w), loss.value(w) + reg.value(w))

    def test_gradient_is_sum(self, loss):
        reg = L2Regularizer(loss.dim, 0.1)
        obj = RegularizedObjective(loss, reg)
        w = np.random.default_rng(2).standard_normal(loss.dim)
        np.testing.assert_allclose(obj.gradient(w), loss.gradient(w) + reg.gradient(w))

    def test_dim_mismatch_rejected(self, loss):
        with pytest.raises(ValueError):
            RegularizedObjective(loss, L2Regularizer(loss.dim + 1, 0.1))

    def test_hessian_strictly_pd_with_regularization(self, loss):
        obj = RegularizedObjective(loss, L2Regularizer(loss.dim, 0.5))
        H = obj.hessian(np.zeros(obj.dim))
        assert np.linalg.eigvalsh(H).min() >= 0.5 - 1e-8

    def test_minibatch_passthrough(self, loss):
        obj = RegularizedObjective(loss, L2Regularizer(loss.dim, 0.1))
        sub = obj.minibatch(np.arange(5))
        assert isinstance(sub, RegularizedObjective)
        assert sub.n_samples == 5

    def test_n_samples(self, loss):
        obj = RegularizedObjective(loss, L2Regularizer(loss.dim, 0.1))
        assert obj.n_samples == 30


class TestScaledObjective:
    def test_scaling(self, loss):
        scaled = ScaledObjective(loss, 3.0)
        w = np.random.default_rng(3).standard_normal(loss.dim)
        v = np.random.default_rng(4).standard_normal(loss.dim)
        np.testing.assert_allclose(scaled.value(w), 3.0 * loss.value(w))
        np.testing.assert_allclose(scaled.gradient(w), 3.0 * loss.gradient(w))
        np.testing.assert_allclose(scaled.hvp(w, v), 3.0 * loss.hvp(w, v))

    def test_nonfinite_factor_rejected(self, loss):
        with pytest.raises(ValueError):
            ScaledObjective(loss, float("nan"))

    def test_value_and_gradient(self, loss):
        scaled = ScaledObjective(loss, 0.5)
        w = np.zeros(loss.dim)
        v, g = scaled.value_and_gradient(w)
        np.testing.assert_allclose(v, 0.5 * loss.value(w))


class TestProximallyAugmented:
    def test_value_adds_quadratic(self, loss):
        center = np.random.default_rng(5).standard_normal(loss.dim)
        obj = ProximallyAugmentedObjective(loss, rho=2.0, center=center)
        w = np.random.default_rng(6).standard_normal(loss.dim)
        expected = loss.value(w) + 1.0 * float((w - center) @ (w - center))
        np.testing.assert_allclose(obj.value(w), expected)

    def test_gradient_matches_finite_differences(self, loss):
        center = np.zeros(loss.dim)
        obj = ProximallyAugmentedObjective(loss, rho=0.7, center=center)
        w = np.random.default_rng(7).standard_normal(loss.dim) * 0.3
        np.testing.assert_allclose(
            obj.gradient(w), numerical_gradient(obj.value, w), atol=1e-6
        )

    def test_hvp_adds_rho_identity(self, loss):
        center = np.zeros(loss.dim)
        obj = ProximallyAugmentedObjective(loss, rho=1.5, center=center)
        w = np.zeros(loss.dim)
        v = np.random.default_rng(8).standard_normal(loss.dim)
        np.testing.assert_allclose(obj.hvp(w, v), loss.hvp(w, v) + 1.5 * v)

    def test_minimizer_pulled_toward_center_as_rho_grows(self, loss):
        center = np.random.default_rng(9).standard_normal(loss.dim)
        w = np.random.default_rng(10).standard_normal(loss.dim)
        # gradient at the center should be dominated by the loss for small rho
        small = ProximallyAugmentedObjective(loss, rho=1e-8, center=center)
        large = ProximallyAugmentedObjective(loss, rho=1e8, center=center)
        g_small = small.gradient(w)
        g_large = large.gradient(w)
        # for huge rho the gradient points (almost exactly) along w - center
        cos = (g_large @ (w - center)) / (
            np.linalg.norm(g_large) * np.linalg.norm(w - center)
        )
        assert cos > 0.999999
        assert np.linalg.norm(g_small - loss.gradient(w)) < 1e-6

    def test_invalid_rho_rejected(self, loss):
        with pytest.raises(ValueError):
            ProximallyAugmentedObjective(loss, rho=0.0, center=np.zeros(loss.dim))

    def test_center_length_checked(self, loss):
        with pytest.raises(ValueError):
            ProximallyAugmentedObjective(loss, rho=1.0, center=np.zeros(3))


class TestLinearlyPerturbed:
    def test_value(self, loss):
        rng = np.random.default_rng(11)
        linear = rng.standard_normal(loss.dim)
        center = rng.standard_normal(loss.dim)
        obj = LinearlyPerturbedObjective(loss, linear, mu=0.3, center=center)
        w = rng.standard_normal(loss.dim)
        expected = (
            loss.value(w)
            - float(linear @ w)
            + 0.15 * float((w - center) @ (w - center))
        )
        np.testing.assert_allclose(obj.value(w), expected)

    def test_gradient_matches_finite_differences(self, loss):
        rng = np.random.default_rng(12)
        linear = rng.standard_normal(loss.dim)
        obj = LinearlyPerturbedObjective(loss, linear, mu=0.2, center=np.zeros(loss.dim))
        w = rng.standard_normal(loss.dim) * 0.3
        np.testing.assert_allclose(
            obj.gradient(w), numerical_gradient(obj.value, w), atol=1e-6
        )

    def test_negative_mu_rejected(self, loss):
        with pytest.raises(ValueError):
            LinearlyPerturbedObjective(loss, np.zeros(loss.dim), mu=-1.0)

    def test_linear_length_checked(self, loss):
        with pytest.raises(ValueError):
            LinearlyPerturbedObjective(loss, np.zeros(3))

    def test_minibatch_keeps_deterministic_terms(self, loss):
        rng = np.random.default_rng(13)
        linear = rng.standard_normal(loss.dim)
        obj = LinearlyPerturbedObjective(loss, linear, mu=0.1, center=np.zeros(loss.dim))
        sub = obj.minibatch(np.arange(6))
        assert isinstance(sub, LinearlyPerturbedObjective)
        np.testing.assert_allclose(sub.linear, linear)
        assert sub.mu == pytest.approx(0.1)
