"""Tests for the communicator, workers and the simulated cluster."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.comm import Communicator
from repro.distributed.device import tesla_p100
from repro.distributed.network import ethernet_10g, infiniband_100g
from repro.distributed.worker import Worker
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.base import CountingObjective
from repro.utils.timer import SimulatedClock


@pytest.fixture()
def comm():
    return Communicator(4, infiniband_100g(), SimulatedClock())


class TestCommunicator:
    def test_allreduce_sums(self, comm):
        buffers = [np.full(3, float(i)) for i in range(4)]
        out = comm.allreduce(buffers)
        np.testing.assert_allclose(out, [6.0, 6.0, 6.0])

    def test_gather_returns_copies(self, comm):
        buffers = [np.arange(3, dtype=float) + i for i in range(4)]
        gathered = comm.gather(buffers)
        gathered[0][0] = 999.0
        assert buffers[0][0] == 0.0

    def test_broadcast_replicates(self, comm):
        out = comm.broadcast(np.array([1.0, 2.0]))
        assert len(out) == 4
        for b in out:
            np.testing.assert_allclose(b, [1.0, 2.0])

    def test_scatter_shapes(self, comm):
        out = comm.scatter([np.full(2, i, dtype=float) for i in range(4)])
        np.testing.assert_allclose(out[2], [2.0, 2.0])

    def test_allgather(self, comm):
        out = comm.allgather([np.array([float(i)]) for i in range(4)])
        assert [b[0] for b in out] == [0.0, 1.0, 2.0, 3.0]

    def test_reduce_scalar(self, comm):
        assert comm.reduce_scalar([1.0, 2.0, 3.0, 4.0]) == 10.0

    def test_round_counting_and_joint_rounds(self, comm):
        buffers = [np.ones(2) for _ in range(4)]
        comm.gather(buffers)
        comm.broadcast(np.ones(2), joint_with_previous=True)
        assert comm.rounds == 1
        assert comm.log.n_collectives == 2
        comm.allreduce(buffers)
        assert comm.rounds == 2

    def test_clock_advanced(self, comm):
        before = comm.clock.time
        comm.allreduce([np.ones(1000) for _ in range(4)])
        assert comm.clock.time > before
        assert comm.clock.category("communication") > 0

    def test_bytes_accounted(self, comm):
        comm.allreduce([np.ones(100) for _ in range(4)])
        assert comm.log.bytes_transferred == pytest.approx(100 * 8 * 4)

    def test_wrong_buffer_count_rejected(self, comm):
        with pytest.raises(ValueError):
            comm.gather([np.ones(2)] * 3)

    def test_allreduce_shape_mismatch_rejected(self, comm):
        with pytest.raises(ValueError):
            comm.allreduce([np.ones(2), np.ones(3), np.ones(2), np.ones(2)])

    def test_reset_log(self, comm):
        comm.broadcast(np.ones(2))
        comm.reset_log()
        assert comm.rounds == 0
        assert comm.log.bytes_transferred == 0.0

    def test_slower_network_costs_more_time(self):
        fast = Communicator(8, infiniband_100g(), SimulatedClock())
        slow = Communicator(8, ethernet_10g(), SimulatedClock())
        payload = [np.ones(10000) for _ in range(8)]
        fast.allreduce(payload)
        slow.allreduce(payload)
        assert slow.clock.time > fast.clock.time


@pytest.fixture()
def dataset():
    return make_multiclass_gaussian(240, 10, 3, class_separation=3.0, random_state=0)


class TestWorker:
    def test_counting_wrapper_applied(self, dataset):
        loss = SoftmaxCrossEntropy(dataset.X, dataset.y, 3, scale=1.0 / 240)
        worker = Worker(0, dataset, loss, tesla_p100())
        assert isinstance(worker.objective, CountingObjective)
        assert worker.n_local_samples == 240
        assert worker.dim == loss.dim

    def test_flop_marking_and_modelled_time(self, dataset):
        loss = SoftmaxCrossEntropy(dataset.X, dataset.y, 3, scale=1.0 / 240)
        worker = Worker(1, dataset, loss, tesla_p100())
        worker.mark_flops()
        worker.objective.gradient(np.zeros(worker.dim))
        assert worker.flops_since_mark() > 0
        assert worker.modelled_compute_time() > 0

    def test_state_vectors(self, dataset):
        loss = SoftmaxCrossEntropy(dataset.X, dataset.y, 3)
        worker = Worker(0, dataset, loss, tesla_p100())
        worker.set_vector("x", np.ones(3))
        np.testing.assert_allclose(worker.get_vector("x"), 1.0)
        with pytest.raises(KeyError):
            worker.get_vector("missing")

    def test_negative_id_rejected(self, dataset):
        loss = SoftmaxCrossEntropy(dataset.X, dataset.y, 3)
        with pytest.raises(ValueError):
            Worker(-1, dataset, loss, tesla_p100())


class TestSimulatedCluster:
    def test_construction_and_shapes(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        assert cluster.n_workers == 4
        assert cluster.n_total == 240
        assert sum(cluster.worker_sizes()) == 240
        assert cluster.dim == 2 * 10

    def test_local_losses_sum_to_global_mean(self, dataset):
        cluster = SimulatedCluster(dataset, 3, random_state=0)
        w = np.random.default_rng(1).standard_normal(cluster.dim) * 0.2
        local_sum = sum(wk.objective.value(w) for wk in cluster.workers)
        global_loss = cluster.global_loss().value(w)
        np.testing.assert_allclose(local_sum, global_loss, rtol=1e-10)

    def test_local_gradients_sum_to_global(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        w = np.random.default_rng(2).standard_normal(cluster.dim) * 0.2
        total = sum(wk.objective.gradient(w) for wk in cluster.workers)
        np.testing.assert_allclose(total, cluster.global_loss().gradient(w), atol=1e-12)

    def test_global_objective_includes_regularizer(self, dataset):
        cluster = SimulatedCluster(dataset, 2, random_state=0)
        obj = cluster.global_objective(0.5)
        w = np.ones(cluster.dim)
        expected = cluster.global_loss().value(w) + 0.25 * cluster.dim
        np.testing.assert_allclose(obj.value(w), expected)

    def test_map_workers_advances_clock_by_max(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        w = np.zeros(cluster.dim)
        before = cluster.clock.time
        cluster.map_workers(lambda wk: wk.objective.gradient(w))
        after = cluster.clock.time
        per_worker = [wk.modelled_compute_time() for wk in cluster.workers]
        assert after - before == pytest.approx(max(per_worker))

    def test_threads_executor_matches_serial(self, dataset):
        serial = SimulatedCluster(dataset, 4, executor="serial", random_state=0)
        threads = SimulatedCluster(dataset, 4, executor="threads", random_state=0)
        w = np.random.default_rng(3).standard_normal(serial.dim) * 0.1
        a = serial.map_workers(lambda wk: wk.objective.gradient(w))
        b = threads.map_workers(lambda wk: wk.objective.gradient(w))
        for x, y in zip(a, b):
            np.testing.assert_allclose(x, y)

    def test_reset_accounting(self, dataset):
        cluster = SimulatedCluster(dataset, 2, random_state=0)
        cluster.map_workers(lambda wk: wk.objective.gradient(np.zeros(cluster.dim)))
        cluster.comm.broadcast(np.ones(3))
        cluster.reset_accounting()
        assert cluster.clock.time == 0.0
        assert cluster.comm.rounds == 0
        assert cluster.total_flops() == 0.0

    def test_logistic_loss_option(self):
        ds = make_multiclass_gaussian(100, 5, 2, random_state=1)
        cluster = SimulatedCluster(ds, 2, loss="logistic", random_state=0)
        assert cluster.dim == 5

    def test_custom_loss_factory(self, dataset):
        def factory(shard, n_total):
            return SoftmaxCrossEntropy(shard.X, shard.y, 3, scale=1.0 / n_total)

        cluster = SimulatedCluster(dataset, 2, loss=factory, random_state=0)
        assert cluster.dim == 20

    def test_invalid_options_rejected(self, dataset):
        with pytest.raises(ValueError):
            SimulatedCluster(dataset, 0)
        with pytest.raises(ValueError):
            SimulatedCluster(dataset, 2, executor="mpi")
        with pytest.raises(ValueError):
            SimulatedCluster(dataset, 2, loss="hinge")

    def test_describe(self, dataset):
        info = SimulatedCluster(dataset, 2, random_state=0).describe()
        assert info["n_workers"] == 2
        assert info["device"] == "tesla_p100"
