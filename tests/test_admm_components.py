"""Tests for the ADMM building blocks: consensus update, residuals, penalties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admm.consensus import admm_residuals, consensus_z_update
from repro.admm.penalty import (
    FixedPenalty,
    PenaltyObservation,
    ResidualBalancing,
    SpectralPenalty,
    make_penalty_policy,
)


def make_obs(
    iteration=2,
    rho=1.0,
    primal=1.0,
    dual=1.0,
    dim=6,
    seed=0,
):
    rng = np.random.default_rng(seed)
    return PenaltyObservation(
        iteration=iteration,
        x_new=rng.standard_normal(dim),
        z_new=rng.standard_normal(dim),
        z_old=rng.standard_normal(dim),
        y_new=rng.standard_normal(dim),
        y_old=rng.standard_normal(dim),
        y_hat=rng.standard_normal(dim),
        rho=rho,
        primal_residual=primal,
        dual_residual=dual,
    )


class TestConsensusZUpdate:
    def test_matches_closed_form(self):
        rng = np.random.default_rng(0)
        x = [rng.standard_normal(5) for _ in range(3)]
        y = [rng.standard_normal(5) for _ in range(3)]
        rho = [0.5, 1.0, 2.0]
        lam = 0.3
        z = consensus_z_update(x, y, rho, lam)
        expected = sum(r * xi - yi for xi, yi, r in zip(x, y, rho)) / (lam + sum(rho))
        np.testing.assert_allclose(z, expected)

    def test_z_minimizes_augmented_objective(self):
        # z* should zero the gradient of lam/2||z||^2 + sum rho_i/2 ||z - x_i + y_i/rho_i||^2.
        rng = np.random.default_rng(1)
        x = [rng.standard_normal(4) for _ in range(4)]
        y = [rng.standard_normal(4) for _ in range(4)]
        rho = [0.1, 0.7, 1.3, 2.0]
        lam = 0.05
        z = consensus_z_update(x, y, rho, lam)
        grad = lam * z + sum(r * (z - xi + yi / r) for xi, yi, r in zip(x, y, rho))
        np.testing.assert_allclose(grad, 0.0, atol=1e-10)

    def test_zero_lam_allowed(self):
        x = [np.ones(3)]
        y = [np.zeros(3)]
        z = consensus_z_update(x, y, [2.0], 0.0)
        np.testing.assert_allclose(z, 1.0)

    def test_equal_penalties_zero_duals_give_average(self):
        x = [np.full(3, 1.0), np.full(3, 3.0)]
        y = [np.zeros(3), np.zeros(3)]
        z = consensus_z_update(x, y, [1.0, 1.0], 0.0)
        np.testing.assert_allclose(z, 2.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            consensus_z_update([np.ones(2)], [], [1.0], 0.1)

    def test_negative_lam_rejected(self):
        with pytest.raises(ValueError):
            consensus_z_update([np.ones(2)], [np.zeros(2)], [1.0], -0.1)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(1, 6), lam=st.floats(0.0, 10.0))
    def test_property_stationarity(self, seed, n, lam):
        rng = np.random.default_rng(seed)
        x = [rng.standard_normal(3) for _ in range(n)]
        y = [rng.standard_normal(3) for _ in range(n)]
        rho = list(rng.uniform(0.1, 5.0, size=n))
        z = consensus_z_update(x, y, rho, lam)
        grad = lam * z + sum(r * (z - xi) + yi for xi, yi, r in zip(x, y, rho))
        np.testing.assert_allclose(grad, 0.0, atol=1e-8)


class TestResiduals:
    def test_zero_residuals_when_consensus_reached(self):
        z = np.ones(4)
        res = admm_residuals([z.copy(), z.copy()], z, z, [np.zeros(4)] * 2, [1.0, 1.0])
        assert res.primal_norm == 0.0
        assert res.dual_norm == 0.0
        assert res.converged

    def test_primal_norm_stacks_workers(self):
        z = np.zeros(2)
        x = [np.array([3.0, 4.0]), np.zeros(2)]
        res = admm_residuals(x, z, z, [np.zeros(2)] * 2, [1.0, 1.0])
        assert res.primal_norm == pytest.approx(5.0)

    def test_dual_norm_scales_with_rho(self):
        z_new = np.ones(3)
        z_old = np.zeros(3)
        small = admm_residuals([z_new], z_new, z_old, [np.zeros(3)], [0.1])
        big = admm_residuals([z_new], z_new, z_old, [np.zeros(3)], [10.0])
        assert big.dual_norm == pytest.approx(100 * small.dual_norm)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            admm_residuals([], np.zeros(2), np.zeros(2), [], [])


class TestFixedAndResidualBalancing:
    def test_fixed_never_changes(self):
        policy = FixedPenalty(2.0)
        assert policy.initial_rho() == 2.0
        assert policy.update(make_obs(rho=2.0)) == 2.0

    def test_residual_balancing_increases_when_primal_dominates(self):
        policy = ResidualBalancing(1.0, mu=10.0, tau=2.0)
        new = policy.update(make_obs(rho=1.0, primal=100.0, dual=1.0))
        assert new == 2.0

    def test_residual_balancing_decreases_when_dual_dominates(self):
        policy = ResidualBalancing(1.0, mu=10.0, tau=2.0)
        new = policy.update(make_obs(rho=1.0, primal=1.0, dual=100.0))
        assert new == 0.5

    def test_residual_balancing_keeps_when_balanced(self):
        policy = ResidualBalancing(1.0)
        assert policy.update(make_obs(rho=1.0, primal=1.0, dual=1.0)) == 1.0

    def test_residual_balancing_bounds(self):
        policy = ResidualBalancing(1.0, rho_min=0.5, rho_max=1.5, tau=10.0)
        up = policy.update(make_obs(rho=1.0, primal=1e6, dual=1.0))
        down = policy.update(make_obs(rho=1.0, primal=1.0, dual=1e6))
        assert up == 1.5
        assert down == 0.5

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ResidualBalancing(1.0, rho_min=2.0, rho_max=1.0)


class TestSpectralPenalty:
    def test_off_period_iterations_keep_rho(self):
        policy = SpectralPenalty(1.0, update_period=2)
        assert policy.update(make_obs(iteration=1, rho=1.0)) == 1.0

    def test_first_estimation_point_only_snapshots(self):
        policy = SpectralPenalty(1.0, update_period=1)
        assert policy.update(make_obs(iteration=1, rho=1.0)) == 1.0
        # Second call now has history and may change rho (finite, positive).
        new = policy.update(make_obs(iteration=2, rho=1.0, seed=3))
        assert np.isfinite(new) and new > 0

    def test_recovers_quadratic_curvature(self):
        # For f_i(x) = (a/2)||x||^2 the spectral estimate of the local
        # curvature is exactly a; construct consistent observations where
        # y_hat = a * x (dual optimality for the quadratic) and z follows a
        # similar relation with curvature b, so rho -> sqrt(a*b).
        a, b = 4.0, 1.0
        dim = 5
        rng = np.random.default_rng(0)
        policy = SpectralPenalty(1.0, update_period=1)
        x0, z0 = rng.standard_normal(dim), rng.standard_normal(dim)
        obs0 = PenaltyObservation(
            iteration=1, x_new=x0, z_new=z0, z_old=z0, y_new=b * z0, y_old=b * z0,
            y_hat=a * x0, rho=1.0, primal_residual=1.0, dual_residual=1.0,
        )
        policy.update(obs0)
        x1, z1 = x0 + rng.standard_normal(dim), z0 + rng.standard_normal(dim)
        obs1 = PenaltyObservation(
            iteration=2, x_new=x1, z_new=z1, z_old=z0, y_new=b * z1, y_old=b * z0,
            y_hat=a * x1, rho=1.0, primal_residual=1.0, dual_residual=1.0,
        )
        new_rho = policy.update(obs1)
        assert new_rho == pytest.approx(np.sqrt(a * b), rel=1e-6)

    def test_rho_stays_within_bounds(self):
        policy = SpectralPenalty(1.0, update_period=1, rho_min=0.5, rho_max=2.0)
        rng = np.random.default_rng(1)
        rho = 1.0
        for k in range(1, 10):
            rho = policy.update(make_obs(iteration=k, rho=rho, seed=k))
            assert 0.5 <= rho <= 2.0

    def test_uncorrelated_signals_keep_rho(self):
        # Orthogonal differences -> correlations ~ 0 -> safeguard keeps rho.
        policy = SpectralPenalty(1.0, update_period=1)
        dim = 4
        e = np.eye(dim)
        obs0 = PenaltyObservation(
            iteration=1, x_new=e[0], z_new=e[1], z_old=e[1], y_new=e[2], y_old=e[2],
            y_hat=e[3], rho=1.0, primal_residual=1.0, dual_residual=1.0,
        )
        policy.update(obs0)
        obs1 = PenaltyObservation(
            iteration=2, x_new=e[0] + e[1], z_new=e[1] + e[2], z_old=e[1],
            y_new=e[2] + e[3], y_old=e[2], y_hat=e[3] + e[0],
            rho=1.0, primal_residual=1.0, dual_residual=1.0,
        )
        # dx = e1, dyhat = e0 -> correlation 0; dz = e2, dy = e3 -> correlation 0.
        assert policy.update(obs1) == 1.0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SpectralPenalty(1.0, update_period=0)


class TestPolicyFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("spectral", SpectralPenalty),
            ("sps", SpectralPenalty),
            ("residual_balancing", ResidualBalancing),
            ("rb", ResidualBalancing),
            ("fixed", FixedPenalty),
        ],
    )
    def test_known_names(self, name, cls):
        factory = make_penalty_policy(name, rho0=0.7)
        policy = factory()
        assert isinstance(policy, cls)
        assert policy.initial_rho() == 0.7

    def test_factories_produce_fresh_instances(self):
        factory = make_penalty_policy("spectral")
        assert factory() is not factory()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_penalty_policy("magic")
