"""Precision modes: mixed/fp32 parity, session defaults, and flops honesty.

The documented contract (``docs/performance.md``, ``repro.backend.precision``)
is that a ``"mixed"`` or ``"fp32"`` solve reaches the same final objective as
the fp64 run within ``5e-4`` relative and the same final iterate within
``2e-3`` relative L2 — while the default ``None`` mode stays bit-reproducible.
This module asserts that contract for Newton-ADMM and GIANT on the synthetic
and mnist-like workloads, over every installed backend, plus the plumbing
around it (session default, cluster/CLI threading, dtype-misuse errors) and
the S6 requirement that the flops model agrees with what the backend actually
executed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.backend import (
    PRECISION_MODES,
    backend_available,
    resolve_precision,
    set_default_precision,
    storage_dtype,
)
from repro.backend.testing import TracingBackend
from repro.baselines.giant import GIANT
from repro.datasets.registry import mnist_like
from repro.distributed.cluster import SimulatedCluster
from repro.linalg.cg import conjugate_gradient
from repro.objectives.logistic import BinaryLogistic
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.base import CountingObjective
from repro.utils.flops import (
    softmax_gradient_flops,
    softmax_objective_flops,
    softmax_value_and_gradient_flops,
)

#: documented parity bounds for reduced-precision solves vs. the fp64 run
OBJECTIVE_RTOL = 5e-4
ITERATE_RTOL = 2e-3

BACKENDS = ["numpy"] + [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            not backend_available(name), reason=f"{name} not installed"
        ),
    )
    for name in ("cupy", "torch")
]

SOLVERS = {
    "newton_admm": lambda **kw: NewtonADMM(lam=1e-4, max_epochs=5, **kw),
    "giant": lambda **kw: GIANT(lam=1e-3, max_epochs=5, **kw),
}


def _mnist_train():
    train, _ = mnist_like(n_train=600, n_test=100, random_state=0)
    return train


@pytest.fixture()
def clean_default_precision():
    yield
    set_default_precision(None)


def _relative(a, b):
    return np.linalg.norm(np.asarray(a, dtype=np.float64) - b) / np.linalg.norm(b)


@pytest.mark.slow
@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("mode", ["mixed", "fp32"])
@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
class TestSolverParity:
    def _run(self, train, solver_name, precision, backend_name):
        cluster = SimulatedCluster(
            train, 4, random_state=0, backend=backend_name, precision=precision
        )
        kwargs = {"precision": precision} if precision == "mixed" else {}
        return SOLVERS[solver_name](**kwargs).fit(cluster)

    def _assert_parity(self, train, solver_name, mode, backend_name):
        ref = self._run(train, solver_name, None, backend_name)
        low = self._run(train, solver_name, mode, backend_name)
        assert abs(low.final.objective - ref.final.objective) <= (
            OBJECTIVE_RTOL * abs(ref.final.objective)
        )
        assert _relative(low.final_w, ref.final_w) <= ITERATE_RTOL

    def test_synthetic(
        self, solver_name, mode, backend_name, small_multiclass_split
    ):
        train, _ = small_multiclass_split
        self._assert_parity(train, solver_name, mode, backend_name)

    def test_mnist_like(self, solver_name, mode, backend_name):
        self._assert_parity(_mnist_train(), solver_name, mode, backend_name)


class TestPrecisionPlumbing:
    def test_resolve_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="precision"):
            resolve_precision("bf16")
        with pytest.raises(ValueError, match="precision"):
            set_default_precision("half")

    def test_storage_dtype_mapping(self):
        assert storage_dtype("fp32") == np.float32
        assert storage_dtype("mixed") == np.float32
        assert storage_dtype("fp64") == np.float64
        assert storage_dtype(None) is None
        assert set(PRECISION_MODES) == {"fp64", "fp32", "mixed"}

    def test_session_default_reaches_objectives(self, clean_default_precision):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((50, 4))
        y = rng.integers(0, 3, size=50)
        y[:3] = np.arange(3)
        set_default_precision("mixed")
        soft = SoftmaxCrossEntropy(X, y, 3)
        logi = BinaryLogistic(X, (y > 0).astype(np.int64))
        assert soft.precision == "mixed" and soft.X.dtype == np.float32
        assert logi.precision == "mixed" and logi.X.dtype == np.float32
        set_default_precision(None)
        assert SoftmaxCrossEntropy(X, y, 3).X.dtype == np.float64

    def test_cluster_threads_precision_to_workers(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 3, random_state=0, precision="fp32")
        assert cluster.describe()["precision"] == "fp32"
        for worker in cluster.workers:
            assert worker.objective.base.X.dtype == np.float32

    def test_cluster_default_precision_unchanged(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 3, random_state=0)
        assert cluster.describe()["precision"] is None
        for worker in cluster.workers:
            assert worker.objective.base.X.dtype == np.float64

    def test_minibatch_inherits_precision(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((60, 5))
        y = rng.integers(0, 3, size=60)
        y[:3] = np.arange(3)
        obj = SoftmaxCrossEntropy(X, y, 3, precision="mixed")
        batch = obj.minibatch(np.arange(20))
        assert batch.precision == "mixed"
        assert batch.X.dtype == np.float32

    def test_mixed_mode_gradient_close_to_fp64(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((80, 6))
        y = rng.integers(0, 4, size=80)
        y[:4] = np.arange(4)
        ref = SoftmaxCrossEntropy(X, y, 4)
        mix = SoftmaxCrossEntropy(X, y, 4, precision="mixed")
        w64 = rng.standard_normal(ref.dim) * 0.1
        w32 = w64.astype(np.float32)
        assert mix.value(w32) == pytest.approx(ref.value(w64), rel=1e-5)
        assert _relative(mix.gradient(w32), ref.gradient(w64)) < 1e-5
        assert mix.gradient(w32).dtype == np.float32

    def test_mixed_dtype_misuse_still_raises(self):
        """precision='mixed' manages reductions, not sloppy dtype mixing —
        an fp32 operator applied to an fp64 vector is still an error."""
        from repro.linalg.operators import MatrixOperator

        op = MatrixOperator(np.eye(6, dtype=np.float32) * 2.0)
        with pytest.raises(TypeError, match="mixed dtypes"):
            op.matvec(np.zeros(6, dtype=np.float64))
        with pytest.raises(TypeError, match="mixed dtypes"):
            conjugate_gradient(
                op,
                np.ones(6, dtype=np.float64),
                tol=1e-4,
                max_iter=5,
                precision="mixed",
            )

    def test_default_precision_cg_bit_identical(self):
        """precision=None must not change CG reductions: same bits as a
        pre-precision-mode solve."""
        rng = np.random.default_rng(4)
        M = rng.standard_normal((10, 10))
        A = M @ M.T + 10 * np.eye(10)
        b = rng.standard_normal(10)
        from repro.linalg.operators import MatrixOperator

        op = MatrixOperator(A)
        plain = conjugate_gradient(op, b, tol=1e-12, max_iter=50)
        modeless = conjugate_gradient(op, b, tol=1e-12, max_iter=50, precision=None)
        np.testing.assert_array_equal(plain.x, modeless.x)


class TestFlopsAccounting:
    """S6: modelled flops follow the fused/cached execution, tied to what the
    TracingBackend actually counted."""

    def _problem(self):
        rng = np.random.default_rng(5)
        X = rng.standard_normal((70, 6))
        y = rng.integers(0, 4, size=70)
        y[:4] = np.arange(4)
        return X, y

    def test_fused_flops_less_than_composed_sum(self):
        n, p, c = 70, 6, 4
        fused = softmax_value_and_gradient_flops(n, p, c)
        composed = softmax_objective_flops(n, p, c) + softmax_gradient_flops(n, p, c)
        assert fused < composed
        assert fused > softmax_gradient_flops(n, p, c)

    def test_counting_objective_charges_fused_cost(self):
        X, y = self._problem()
        obj = SoftmaxCrossEntropy(X, y, 4)
        counted = CountingObjective(obj)
        counted.value_and_gradient(np.zeros(obj.dim))
        assert counted.flops == obj.flops_value_and_gradient()
        assert counted.flops < obj.flops_value() + obj.flops_gradient()

    def test_counting_objective_hvp_mat_charges_per_column(self):
        X, y = self._problem()
        obj = SoftmaxCrossEntropy(X, y, 4)
        counted = CountingObjective(obj)
        V = np.random.default_rng(6).standard_normal((obj.dim, 5))
        counted.hvp_mat(np.zeros(obj.dim), V)
        assert counted.n_hvp == 5
        assert counted.flops == 5 * obj.flops_hvp()

    def test_flops_ordering_matches_traced_op_ordering(self):
        """The flops model claims fused < composed; the backend op counts
        must agree, so modelled time and real work move together."""
        X, y = self._problem()

        bk_f = TracingBackend()
        fused_obj = SoftmaxCrossEntropy(X, y, 4, backend=bk_f)
        w = fused_obj.check_weights(bk_f.asarray(np.zeros(fused_obj.dim)))
        bk_f.reset()
        fused_obj.value_and_gradient(w)
        fused_ops = bk_f.total_calls()

        bk_c = TracingBackend()
        composed_obj = SoftmaxCrossEntropy(X, y, 4, backend=bk_c)
        wc = composed_obj.check_weights(bk_c.asarray(np.zeros(composed_obj.dim)))
        bk_c.reset()
        composed_obj.value(wc)
        composed_obj._iterate_cache = None
        composed_obj.gradient(wc)
        composed_ops = bk_c.total_calls()

        flops_say_fused_cheaper = (
            fused_obj.flops_value_and_gradient()
            < fused_obj.flops_value() + fused_obj.flops_gradient()
        )
        ops_say_fused_cheaper = fused_ops < composed_ops
        assert flops_say_fused_cheaper and ops_say_fused_cheaper
