"""Guards for the docs/ guide set: the guides exist, README links them, the
markdown link checker passes over everything it will check in CI, and every
example script exposes the --smoke mode the docs CI job executes."""

import importlib.util
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
GUIDES = ("architecture.md", "schedule-ir.md", "faults.md")


@pytest.fixture(scope="module")
def check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO / "scripts" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_guides_exist():
    for name in GUIDES:
        assert (REPO / "docs" / name).is_file(), f"docs/{name} missing"


def test_readme_links_every_guide():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    for name in GUIDES:
        assert f"docs/{name}" in readme, f"README does not link docs/{name}"


def test_link_check_passes(check_links):
    # The same invocation the CI docs job runs.
    assert check_links.main([str(REPO / "README.md"), str(REPO / "docs")]) == 0


def test_link_checker_catches_breakage(tmp_path, check_links):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](does-not-exist.md)", encoding="utf-8")
    assert check_links.main([str(bad)]) == 1
    good = tmp_path / "good.md"
    good.write_text("# Title\nsee [self](#title)", encoding="utf-8")
    assert check_links.main([str(good)]) == 0


def test_link_checker_checks_anchors(tmp_path, check_links):
    target = tmp_path / "target.md"
    target.write_text("# Real Heading\n", encoding="utf-8")
    src = tmp_path / "src.md"
    src.write_text("[ok](target.md#real-heading) [bad](target.md#nope)",
                   encoding="utf-8")
    assert check_links.main([str(src)]) == 1


def test_every_example_has_smoke_mode():
    examples = sorted((REPO / "examples").glob("*.py"))
    assert examples, "no example scripts found"
    for example in examples:
        content = example.read_text(encoding="utf-8")
        assert re.search(r"--smoke", content), (
            f"{example.name} lacks the --smoke mode the docs CI job runs"
        )


def test_faults_guide_references_the_example_and_ablation():
    guide = (REPO / "docs" / "faults.md").read_text(encoding="utf-8")
    assert "examples/faults_and_quorum.py" in guide
    assert "ablation-faults" in guide
