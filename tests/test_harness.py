"""Tests for the experiment harness (configs, runner, per-figure experiments).

The experiment functions are exercised at QUICK scale with tiny overrides so
the whole module stays fast; the benchmark suite runs them at their default
sizes.
"""

import numpy as np
import pytest

# ``test_size_for`` is aliased so pytest does not collect it as a test.
from repro.harness.config import (
    ClusterConfig,
    ExperimentScale,
    SolverConfig,
    train_size_for,
)
from repro.harness.config import test_size_for as size_of_test_split
from repro.harness.experiments import (
    ablation_cg_budget,
    ablation_penalty_policies,
    figure1_second_order_comparison,
    figure2_epoch_times,
    figure3_speedup_ratios,
    figure4_first_order_comparison,
    figure5_e18_weak_scaling,
    table1_datasets,
)
from repro.harness.runner import (
    SOLVER_REGISTRY,
    build_cluster,
    make_solver,
    reference_optimum,
    resolve_device,
    resolve_network,
    run_method,
)
from repro.metrics.traces import RunTrace


class TestConfig:
    def test_scale_sizes_defined_for_all_datasets(self):
        for scale in ExperimentScale:
            for name in ("higgs_like", "mnist_like", "cifar_like", "e18_like"):
                assert train_size_for(name, scale) > 0
                assert size_of_test_split(name, scale) > 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            train_size_for("svhn", ExperimentScale.QUICK)

    def test_scales_ordered(self):
        quick = train_size_for("mnist_like", ExperimentScale.QUICK)
        small = train_size_for("mnist_like", ExperimentScale.SMALL)
        paper = train_size_for("mnist_like", ExperimentScale.PAPER)
        assert quick < small < paper

    def test_solver_config_label(self):
        assert SolverConfig("giant").label() == "giant"
        assert SolverConfig("giant", {"label": "g2"}).label() == "g2"


class TestRunner:
    def test_registry_contains_all_methods(self):
        assert set(SOLVER_REGISTRY) == {
            "newton_admm",
            "async_newton_admm",
            "giant",
            "inexact_dane",
            "aide",
            "disco",
            "cocoa",
            "sync_sgd",
            "async_sgd",
        }

    def test_make_solver(self):
        solver = make_solver(SolverConfig("newton_admm", {"lam": 1e-4, "max_epochs": 3}))
        assert solver.lam == 1e-4
        assert solver.max_epochs == 3

    def test_make_solver_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_solver(SolverConfig("sdca"))

    def test_resolvers(self):
        assert resolve_network("ethernet_10g").name == "ethernet_10g"
        assert resolve_device("tesla_p100").name == "tesla_p100"
        with pytest.raises(KeyError):
            resolve_network("carrier_pigeon")
        with pytest.raises(KeyError):
            resolve_device("tpu_v9")

    def test_build_cluster(self):
        config = ClusterConfig(dataset="higgs_like", n_workers=2, n_train=400, n_test=80)
        cluster, test = build_cluster(config)
        assert cluster.n_workers == 2
        assert cluster.n_total == 400
        assert test.n_samples == 80

    def test_run_method_returns_trace_with_provenance(self):
        config = ClusterConfig(dataset="higgs_like", n_workers=2, n_train=400, n_test=80)
        trace = run_method(
            SolverConfig("newton_admm", {"lam": 1e-4, "max_epochs": 3}), config
        )
        assert isinstance(trace, RunTrace)
        assert trace.n_epochs == 3
        assert trace.info["solver_config"]["name"] == "newton_admm"
        assert trace.info["cluster_config"]["dataset"] == "higgs_like"

    def test_reference_optimum_has_small_gradient(self, small_multiclass_split):
        train, _ = small_multiclass_split
        w_star, f_star = reference_optimum(
            train, 1e-3, max_iterations=50, cg_max_iter=80, grad_tol=1e-8
        )
        from repro.objectives import (
            L2Regularizer,
            RegularizedObjective,
            SoftmaxCrossEntropy,
        )

        loss = SoftmaxCrossEntropy(train.X, train.y, train.n_classes)
        obj = RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-3))
        assert np.linalg.norm(obj.gradient(w_star)) < 1e-5
        assert f_star == pytest.approx(obj.value(w_star))


class TestTable1:
    def test_rows_and_report(self):
        result = table1_datasets(ExperimentScale.QUICK)
        assert len(result["rows"]) == 4
        names = {r["dataset"] for r in result["rows"]}
        assert names == {"HIGGS", "MNIST", "CIFAR-10", "E18"}
        for row in result["rows"]:
            assert row["classes_paper"] == row["classes_repro"]
        assert "Table 1" in result["report"]

    def test_feature_counts_match_paper_except_e18(self):
        rows = {r["dataset"]: r for r in table1_datasets(ExperimentScale.QUICK)["rows"]}
        assert rows["MNIST"]["features_repro"] == rows["MNIST"]["features_paper"]
        assert rows["HIGGS"]["features_repro"] == rows["HIGGS"]["features_paper"]
        assert rows["E18"]["features_repro"] < rows["E18"]["features_paper"]


@pytest.mark.slow
class TestFigureExperiments:
    """Each figure driver is run on a deliberately tiny configuration."""

    def test_figure1_shapes(self):
        result = figure1_second_order_comparison(ExperimentScale.QUICK, n_workers=2)
        assert set(result["traces"]) == {"newton_admm", "giant", "inexact_dane", "aide"}
        assert len(result["rows"]) == 4
        assert "Figure 1" in result["report"]
        for trace in result["traces"].values():
            assert np.isfinite(trace.final.objective)

    def test_figure2_rows(self):
        result = figure2_epoch_times(
            ExperimentScale.QUICK,
            datasets=("higgs_like",),
            worker_counts=(1, 2),
        )
        # 1 dataset x 2 modes x 2 worker counts x 2 methods
        assert len(result["rows"]) == 8
        for row in result["rows"]:
            assert row["avg_epoch_time_ms"] > 0

    def test_figure3_rows(self):
        result = figure3_speedup_ratios(
            ExperimentScale.QUICK,
            strong_datasets=("higgs_like",),
            weak_datasets=(),
            worker_counts=(2,),
        )
        assert len(result["rows"]) == 1
        row = result["rows"][0]
        assert row["speedup_ratio"] >= 0 or np.isnan(row["speedup_ratio"])

    def test_figure4_rows(self):
        result = figure4_first_order_comparison(
            ExperimentScale.QUICK,
            datasets=("higgs_like",),
            sgd_step_sizes=(0.1,),
            admm_cg_iters=(10,),
        )
        assert len(result["rows"]) == 1
        assert "newton_admm" in result["traces"]["higgs_like"]
        assert "sync_sgd" in result["traces"]["higgs_like"]

    def test_figure5_rows(self):
        result = figure5_e18_weak_scaling(
            ExperimentScale.QUICK, n_workers=4, lams=(1e-3,)
        )
        assert len(result["rows"]) == 2  # 1 lambda x 2 methods
        assert all(np.isfinite(r["final_objective"]) for r in result["rows"])

    def test_ablation_penalty(self):
        result = ablation_penalty_policies(ExperimentScale.QUICK, n_workers=2)
        assert {r["penalty"] for r in result["rows"]} == {
            "spectral",
            "residual_balancing",
            "fixed",
        }

    def test_ablation_cg(self):
        result = ablation_cg_budget(
            ExperimentScale.QUICK, n_workers=2, cg_iters=(5, 20)
        )
        assert [r["cg_max_iter"] for r in result["rows"]] == [5, 20]
