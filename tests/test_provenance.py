"""Provenance coverage: no constructor knob silently missing from records.

``trace.info`` is the reproduction's provenance record — every solver stamps
``hyperparameters()`` and every cluster stamps ``describe()`` into it.  A
kwarg added to a constructor but not surfaced there rots silently: runs look
reproducible while an undeclared knob changed the math (the ``cg_block`` /
``precision`` / ``on_failure`` additions of the perf PRs were exactly this
risk).  These tests enumerate the constructor signatures mechanically, so a
new kwarg fails the suite until it either appears in the record or is added
to the *explicit* exemption lists below with a reason.
"""

from __future__ import annotations

import inspect
import json

import pytest

from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.schedule_diff import ClusterProfile
from repro.distributed.solver_base import DistributedSolver
from repro.distributed.stragglers import StragglerModel
from repro.harness.runner import SOLVER_REGISTRY

#: ``__init__`` kwargs allowed to stay out of ``hyperparameters()``.
#: Empty on purpose: every solver knob is provenance.  Add entries only with
#: a reason the knob cannot affect the recorded run.
SOLVER_EXEMPT: dict = {}

#: ``fit()`` kwargs that are *run wiring*, not hyperparameters: callbacks
#: observe the run (``on_record``) or end it from outside (``should_stop``),
#: the cluster/test set are recorded via ``cluster_config``, ``w0`` is the
#: run's input iterate (zeros unless a warm start hands one in), and
#: ``reset_cluster`` only decides whether modelled clocks restart at zero.
FIT_EXEMPT = {
    "self", "cluster", "test", "on_record", "should_stop", "w0", "reset_cluster",
}

#: ``SimulatedCluster.__init__`` kwargs not in ``describe()``: the dataset
#: itself (provenance records its registry name and sizes, not the rows) and
#: pre-built shards (recorded as ``sharding == "explicit"``).
CLUSTER_EXEMPT = {"train", "shards"}


def _init_params(cls) -> list:
    return [
        name
        for name, p in inspect.signature(cls.__init__).parameters.items()
        if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
    ]


@pytest.mark.parametrize("name", sorted(SOLVER_REGISTRY))
def test_every_solver_kwarg_is_recorded(name):
    cls = SOLVER_REGISTRY[name]
    solver = cls()
    recorded = set(solver.hyperparameters())
    exempt = set(SOLVER_EXEMPT.get(name, ()))
    missing = [p for p in _init_params(cls) if p not in recorded | exempt]
    assert not missing, (
        f"{cls.__name__} kwargs {missing} are absent from hyperparameters(); "
        "record them or exempt them explicitly in SOLVER_EXEMPT"
    )


def test_recent_solver_kwargs_are_present_where_defined():
    # The knobs the perf PRs added must show up on the solvers that take
    # them — the mechanical sweep above would also catch this, but these are
    # the regressions this test was written against, so name them.
    for cls in SOLVER_REGISTRY.values():
        params = set(_init_params(cls))
        recorded = set(cls().hyperparameters())
        for knob in ("cg_block", "precision", "on_failure"):
            if knob in params:
                assert knob in recorded, f"{cls.__name__} drops {knob!r}"


def test_fit_callbacks_are_exempt_not_forgotten():
    # The exemption list must describe fit() as it is: every fit parameter
    # is either wiring (exempt) or does not exist.  If fit() grows a real
    # hyperparameter this fails and forces a decision.
    fit_params = set(inspect.signature(DistributedSolver.fit).parameters)
    assert fit_params <= FIT_EXEMPT
    assert {"on_record", "should_stop"} <= fit_params


def test_every_cluster_kwarg_is_recorded():
    dataset = make_multiclass_gaussian(120, 6, 3, random_state=0)
    cluster = SimulatedCluster(
        dataset,
        4,
        straggler=StragglerModel(slowdown=2.0, persistent_stragglers=[1]),
        random_state=0,
    )
    recorded = set(cluster.describe())
    missing = [
        p
        for p in _init_params(SimulatedCluster)
        if p not in recorded | CLUSTER_EXEMPT
    ]
    assert not missing, (
        f"SimulatedCluster kwargs {missing} are absent from describe(); "
        "record them or exempt them explicitly in CLUSTER_EXEMPT"
    )
    # The record is provenance: it must serialize as-is.
    json.dumps(cluster.describe())


def test_cluster_records_straggler_and_sharding():
    dataset = make_multiclass_gaussian(120, 6, 3, random_state=0)
    straggled = SimulatedCluster(
        dataset,
        4,
        straggler=StragglerModel(slowdown=3.0, persistent_stragglers=[0]),
        sharding="contiguous",
        random_state=7,
    )
    info = straggled.describe()
    assert info["straggler"]["slowdown"] == 3.0
    assert info["straggler"]["persistent_stragglers"] == [0]
    assert info["sharding"] == "contiguous"
    assert info["random_state"] == 7
    plain = SimulatedCluster(dataset, 4, random_state=0).describe()
    assert plain["straggler"] is None


def test_straggler_describe_covers_every_field():
    model = StragglerModel(slowdown=5.0, probability=0.25, jitter=0.1)
    described = set(model.describe())
    declared = {
        name
        for name, p in inspect.signature(StragglerModel.__init__).parameters.items()
        if name != "self"
    }
    assert described == declared
    json.dumps(model.describe())


def test_cluster_profile_describe_is_complete_and_serializable():
    profile = ClusterProfile(
        n_workers=8,
        straggler=StragglerModel(slowdown=4.0, persistent_stragglers=[0]),
        faults="mtbf=0.01,restart=0.002,seed=0",
    )
    info = profile.describe()
    assert info["n_workers"] == 8
    assert info["straggler"]["slowdown"] == 4.0
    assert info["faults"] is not None
    json.dumps(info)
