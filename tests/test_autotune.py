"""Tests for the schedule autotuner: overlap proposer and tournament search.

The proposer is exercised on synthetic plans (accept and reject paths) and
on GIANT's real epoch plan, where every rewrite must be *rejected*: the
hand-written overlap variant hoists new compute between post and join, which
a structural rewriter cannot invent — the in-flight guard is the oracle that
keeps it honest.  The tournament invariants (seeded determinism, winner not
beaten by any hand-written plan, no-op profile keeps the paper's 1-round
plan on top) run on a reduced MNIST-like workload.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.giant import GIANT
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.autotune import (
    TournamentEntry,
    default_entries,
    propose_overlap,
    run_tournament,
)
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.network import infiniband_100g
from repro.distributed.schedule import Collective, Join, RoundPlan, execute_plan
from repro.distributed.schedule_diff import ClusterProfile
from repro.distributed.stragglers import StragglerModel


@pytest.fixture(scope="module")
def dataset():
    return make_multiclass_gaussian(160, 6, 3, class_separation=2.0, random_state=0)


def _cluster(dataset) -> SimulatedCluster:
    return SimulatedCluster(dataset, 4, engine="event", random_state=0)


# ---------------------------------------------------------------------------
# Overlap proposer
# ---------------------------------------------------------------------------
class TestProposeOverlap:
    def _deferred_consumer_plan(self, dim: int) -> RoundPlan:
        # The allreduce result is only read *after* independent local work:
        # a legal overlap the solver author forgot.
        plan = RoundPlan("deferrable")
        plan.local("g", lambda w, ctx: np.ones(dim))
        plan.allreduce("s", lambda ctx: ctx["g"])
        plan.local("extra", lambda w, ctx: float(w.worker_id))
        plan.master(lambda ctx: ctx["s"] * 2.0, name="out")
        plan.returns("out")
        return plan

    def test_applies_overlap_when_result_can_wait(self, dataset):
        cluster = _cluster(dataset)
        plan = self._deferred_consumer_plan(cluster.dim)
        proposal = propose_overlap(plan, verify_on=_cluster(dataset))
        assert proposal.verified and proposal.changed
        assert [c["status"] for c in proposal.candidates] == ["proposed"]
        rewritten = [s for s in proposal.proposed.steps if isinstance(s, Collective)]
        assert rewritten[0].overlap
        assert any(isinstance(s, Join) for s in proposal.proposed.steps)
        # Declared shape is untouched and the rewrite actually runs.
        assert proposal.proposed.declared_rounds == plan.declared_rounds == 1
        execution = execute_plan(_cluster(dataset), proposal.proposed)
        assert np.allclose(execution.result, 2.0 * 4 * np.ones(cluster.dim))

    def test_rejects_when_result_consumed_before_local_work(self, dataset):
        # Same steps, but the master reads the sum *before* the local work:
        # the trial execution trips the in-flight guard and rolls back.
        cluster = _cluster(dataset)
        plan = RoundPlan("eager")
        plan.local("g", lambda w, ctx: np.ones(cluster.dim))
        plan.allreduce("s", lambda ctx: ctx["g"])
        plan.master(lambda ctx: ctx["s"] * 2.0, name="out")
        plan.local("extra", lambda w, ctx: float(w.worker_id))
        proposal = propose_overlap(plan, verify_on=_cluster(dataset))
        assert [c["status"] for c in proposal.candidates] == ["rejected"]
        assert "overlap" in proposal.candidates[0]["reason"]
        assert not proposal.changed
        assert diff_is_empty(plan, proposal.proposed)

    def test_giant_base_plan_is_not_naively_overlappable(self, dataset):
        # GIANT's hand-written overlap variant hoists *new* compute between
        # post and join; the base plan consumes every collective result
        # immediately, so a structural rewrite has nothing to hide behind —
        # every proposal the walker makes must be rejected by the guard.
        cluster = _cluster(dataset)
        solver = GIANT(lam=1e-3, max_epochs=1, record_accuracy=False)
        solver.fit(cluster)
        # Trial-execute on the fitted cluster: the plan's thunks read the
        # per-worker state the fit left behind.
        plan = solver._plan_epoch(cluster, 0)
        proposal = propose_overlap(plan, verify_on=cluster)
        assert proposal.candidates, "walker found no candidates on GIANT's plan"
        assert all(c["status"] == "rejected" for c in proposal.candidates)
        assert not proposal.changed

    def test_unverified_without_probe_cluster(self, dataset):
        plan = self._deferred_consumer_plan(_cluster(dataset).dim)
        proposal = propose_overlap(plan)
        assert not proposal.verified
        assert [c["status"] for c in proposal.candidates] == ["unverified"]

    def test_profile_orders_candidates_by_transfer_cost(self, dataset):
        plan = self._deferred_consumer_plan(_cluster(dataset).dim)
        profile = ClusterProfile(n_workers=4)
        proposal = propose_overlap(
            plan, verify_on=_cluster(dataset), profile=profile
        )
        assert all("transfer_seconds" in c for c in proposal.candidates)

    def test_describe_is_json_serializable(self, dataset):
        plan = self._deferred_consumer_plan(_cluster(dataset).dim)
        proposal = propose_overlap(plan, verify_on=_cluster(dataset))
        json.dumps(proposal.describe())


def diff_is_empty(a: RoundPlan, b: RoundPlan) -> bool:
    from repro.distributed.schedule_diff import diff_plans

    return diff_plans(a, b).is_empty


# ---------------------------------------------------------------------------
# Tournament invariants
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def mnist_slice():
    return load_dataset("mnist_like", n_train=600, n_test=200, random_state=0)


NOOP = ClusterProfile(n_workers=8, network=infiniband_100g())


def _hard_profile() -> ClusterProfile:
    return ClusterProfile(
        n_workers=8,
        network=infiniband_100g(),
        straggler=StragglerModel(
            slowdown=6.0, persistent_stragglers=[0, 1], random_state=0
        ),
        faults="mtbf=0.002,restart=0.0005,seed=0",
    )


def _tournament(mnist_slice, profile, seed=0):
    train, test = mnist_slice
    return run_tournament(
        train, profile, seed=seed, n_trials=4, sync_epochs=6, test=test
    )


@pytest.mark.slow
class TestTournament:
    @pytest.fixture(scope="class")
    def hard_results(self, mnist_slice):
        # Two independent runs with the same profile + seed: the pair feeds
        # both the determinism test and the score invariants.
        return (
            _tournament(mnist_slice, _hard_profile()),
            _tournament(mnist_slice, _hard_profile()),
        )

    @pytest.fixture(scope="class")
    def noop_result(self, mnist_slice):
        return _tournament(mnist_slice, NOOP)

    def test_seeded_search_is_deterministic(self, hard_results):
        first, second = hard_results
        assert first.winner == second.winner
        assert [c["label"] for c in first.candidates] == [
            c["label"] for c in second.candidates
        ]
        # Bit-identical, not approximately equal: same draws, same clusters,
        # same modelled clocks.
        for a, b in zip(first.candidates, second.candidates):
            assert a["score"] == b["score"]
            assert a["final_objective"] == b["final_objective"]

    def test_winner_not_beaten_by_any_hand_written_plan(self, hard_results):
        result = hard_results[0]
        winner = next(c for c in result.candidates if c["label"] == result.winner)
        for label, score in result.hand_written_scores.items():
            assert winner["score"] <= score, (
                f"hand-written {label} (score {score}) beats the tournament "
                f"winner {result.winner} (score {winner['score']})"
            )

    def test_noop_profile_leaves_sync_newton_admm_unbeaten(self, noop_result):
        # No stragglers, no faults: nothing for asynchrony or stalling
        # policies to ride through, and the paper's single-round plan wins.
        assert noop_result.winner == "newton_admm"
        winner = next(
            c for c in noop_result.candidates if c["label"] == noop_result.winner
        )
        assert winner["params"]["rounds_per_epoch"] == 1

    def test_noop_field_has_no_async_entries(self, mnist_slice):
        # Quorum schedules are the tuner's response to declared
        # perturbations; a clean profile searches synchronous knobs only.
        labels = [e.label for e in default_entries(NOOP, n_trials=8)]
        assert not any("async" in label for label in labels)
        hard_labels = [e.label for e in default_entries(_hard_profile(), n_trials=8)]
        assert any("async" in label for label in hard_labels)

    def test_provenance_lands_on_winning_trace(self, hard_results):
        result = hard_results[0]
        provenance = result.winner_trace.info["autotune"]
        assert provenance["winner"] == result.winner
        assert provenance["seed"] == 0
        assert provenance["n_entries"] == len(result.candidates)
        assert provenance["profile"]["straggler"]["persistent_stragglers"] == [0, 1]
        json.dumps(provenance)

    def test_first_entry_must_be_hand_written(self, mnist_slice):
        train, test = mnist_slice
        entry = TournamentEntry(
            "rogue", lambda: None, epochs=1, hand_written=False
        )
        with pytest.raises(ValueError, match="hand-written"):
            run_tournament(train, NOOP, entries=[entry])
        with pytest.raises(ValueError, match="at least one"):
            run_tournament(train, NOOP, entries=[])
