"""Shared generated-plan grammar for the schedule property suites.

``round_plans()`` draws random *legal* round plans built from executable
segments; it is used by ``test_schedule_properties.py`` (diff/proposer
properties) and ``test_analysis_properties.py`` (static-verifier
differential properties).  Import this module only after
``pytest.importorskip("hypothesis")``.

The thunks live at module level in a real source file on purpose: the
effect-inference layer (:mod:`repro.analysis.effects`) reads function
bodies through ``linecache``, so plans built from these segments carry
fully *exact* footprints — which the differential suite relies on.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.distributed.schedule import RoundPlan


def _compute(worker, ctx):
    return 1.0


def _payload(key):
    return lambda ctx: ctx[key]


def _consume(key):
    def fn(ctx):
        return float(ctx[key]) * 2.0

    return fn


@st.composite
def round_plans(draw) -> RoundPlan:
    """A random legal plan built from executable segments.

    Segments keep the executor's contracts by construction: overlapped
    collectives are joined before anyone reads them, ``reduce_scalar`` never
    overlaps, ``joint_with_previous`` only follows a blocking collective in
    the same round, and the plan ends joined.
    """
    plan = RoundPlan("prop")
    n_segments = draw(st.integers(min_value=1, max_value=4))
    uid = 0
    last_blocking = None  # name of a blocking collective closing the last round
    for _ in range(n_segments):
        uid += 1
        kind = draw(
            st.sampled_from(
                ("reduce", "reduce_consumed", "overlap", "scalar", "repeat", "local")
            )
        )
        g, s = f"g{uid}", f"s{uid}"
        if kind == "local":
            plan.local(g, _compute)
            last_blocking = None
        elif kind == "reduce":
            plan.local(g, _compute)
            plan.allreduce(s, _payload(g))
            last_blocking = s
        elif kind == "reduce_consumed":
            plan.local(g, _compute)
            plan.allreduce(s, _payload(g))
            plan.master(_consume(s), name=f"m{uid}")
            last_blocking = s
        elif kind == "overlap":
            plan.local(g, _compute)
            plan.allreduce(s, _payload(g), overlap=True)
            plan.local(f"hide{uid}", _compute)
            plan.join()
            if draw(st.booleans()):
                plan.master(_consume(s), name=f"m{uid}")
            last_blocking = None
        elif kind == "scalar":
            plan.local(g, _compute)
            joint = last_blocking is not None and draw(st.booleans())
            plan.reduce_scalar(s, _payload(g), joint_with_previous=joint)
            last_blocking = s
        else:  # repeat
            times = draw(st.integers(min_value=1, max_value=3))

            def body(b, g=g, s=s):
                b.local(g, _compute)
                b.allreduce(s, _payload(g))

            plan.repeat(times, body)
            last_blocking = None
    return plan
