"""Tests for collective algorithms, straggler injection, heterogeneous devices
and the asynchronous parameter-server SGD baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.async_sgd import AsynchronousSGD
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.collectives import (
    bruck_allgather_time,
    recursive_doubling_allreduce_time,
    ring_allgather_time,
    ring_allreduce_time,
    tree_allreduce_time,
    tuned_network,
)
from repro.distributed.device import DeviceModel, cpu_xeon_gold, tesla_p100
from repro.distributed.network import ethernet_10g, infiniband_100g
from repro.distributed.stragglers import StragglerModel
from repro.admm.newton_admm import NewtonADMM


@pytest.fixture(scope="module")
def small_dataset():
    return make_multiclass_gaussian(
        n_samples=240, n_features=12, n_classes=3, random_state=0, name="tiny"
    )


class TestCollectiveAlgorithms:
    def test_ring_beats_tree_for_large_messages(self):
        net = ethernet_10g()
        big = 64 * 2**20  # 64 MiB
        assert ring_allreduce_time(net, 8, big) < tree_allreduce_time(net, 8, big)

    def test_tree_beats_ring_for_small_messages(self):
        net = ethernet_10g()
        small = 64.0  # bytes: latency bound
        assert tree_allreduce_time(net, 16, small) < ring_allreduce_time(net, 16, small)

    def test_single_worker_costs_nothing(self):
        net = infiniband_100g()
        assert ring_allreduce_time(net, 1, 1e6) == 0.0
        assert recursive_doubling_allreduce_time(net, 1, 1e6) == 0.0
        assert bruck_allgather_time(net, 1, 1e6) == 0.0
        assert ring_allgather_time(net, 1, 1e6) == 0.0

    def test_costs_increase_with_message_size(self):
        net = infiniband_100g()
        for fn in (
            ring_allreduce_time,
            recursive_doubling_allreduce_time,
            tree_allreduce_time,
        ):
            assert fn(net, 8, 2e6) > fn(net, 8, 1e6)

    def test_tuned_network_dispatch(self):
        base = infiniband_100g()
        ring = tuned_network(base, allreduce_algorithm="ring")
        rd = tuned_network(base, allreduce_algorithm="recursive_doubling")
        tree = tuned_network(base, allreduce_algorithm="tree")
        nbytes = 8e6
        assert ring.allreduce(8, nbytes) == pytest.approx(
            ring_allreduce_time(base, 8, nbytes)
        )
        assert rd.allreduce(8, nbytes) == pytest.approx(
            recursive_doubling_allreduce_time(base, 8, nbytes)
        )
        assert tree.allreduce(8, nbytes) == pytest.approx(
            tree_allreduce_time(base, 8, nbytes)
        )

    def test_tuned_network_allgather_dispatch(self):
        base = infiniband_100g()
        bruck = tuned_network(base, allgather_algorithm="bruck")
        ring = tuned_network(base, allgather_algorithm="ring")
        assert bruck.allgather(8, 64.0) == pytest.approx(
            bruck_allgather_time(base, 8, 64.0)
        )
        assert ring.allgather(8, 64.0) == pytest.approx(
            ring_allgather_time(base, 8, 64.0)
        )

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(ValueError):
            tuned_network(infiniband_100g(), allreduce_algorithm="carrier_pigeon")
        with pytest.raises(ValueError):
            tuned_network(infiniband_100g(), allgather_algorithm="smoke_signal")

    def test_point_to_point_inherited(self):
        tuned = tuned_network(infiniband_100g())
        assert tuned.point_to_point(1e6) == infiniband_100g().point_to_point(1e6)

    def test_cluster_accepts_tuned_network(self, small_dataset):
        cluster = SimulatedCluster(
            small_dataset,
            4,
            network=tuned_network(infiniband_100g(), allreduce_algorithm="ring"),
            random_state=0,
        )
        solver = NewtonADMM(lam=1e-3, max_epochs=2, record_accuracy=False)
        trace = solver.fit(cluster)
        assert trace.final.comm_time > 0

    @settings(max_examples=25, deadline=None)
    @given(
        n_workers=st.integers(2, 64),
        nbytes=st.floats(8.0, 1e8),
    )
    def test_property_costs_positive(self, n_workers, nbytes):
        net = ethernet_10g()
        for fn in (
            ring_allreduce_time,
            recursive_doubling_allreduce_time,
            tree_allreduce_time,
            ring_allgather_time,
            bruck_allgather_time,
        ):
            assert fn(net, n_workers, nbytes) > 0.0


class TestStragglerModel:
    def test_no_straggling_by_default_probability_zero(self):
        model = StragglerModel(probability=0.0, jitter=0.0)
        np.testing.assert_array_equal(model.sample_factors(5), np.ones(5))

    def test_persistent_straggler_always_slowed(self):
        model = StragglerModel(slowdown=3.0, persistent_stragglers=[1], random_state=0)
        for _ in range(5):
            factors = model.sample_factors(4)
            assert factors[1] == pytest.approx(3.0)
            assert factors[0] == pytest.approx(1.0)

    def test_probability_one_slows_everyone(self):
        model = StragglerModel(slowdown=2.0, probability=1.0, random_state=0)
        np.testing.assert_allclose(model.sample_factors(6), np.full(6, 2.0))

    def test_jitter_produces_positive_factors(self):
        model = StragglerModel(jitter=0.5, random_state=1)
        factors = model.sample_factors(100)
        assert np.all(factors > 0)
        assert factors.std() > 0

    def test_deterministic_given_seed(self):
        a = StragglerModel(probability=0.5, random_state=7)
        b = StragglerModel(probability=0.5, random_state=7)
        np.testing.assert_array_equal(a.sample_factors(10), b.sample_factors(10))

    def test_reset_restarts_sequence(self):
        model = StragglerModel(probability=0.5, random_state=3)
        first = model.sample_factors(8)
        model.reset()
        np.testing.assert_array_equal(model.sample_factors(8), first)
        assert model.n_rounds == 1

    def test_summary_counts_rounds(self):
        model = StragglerModel(probability=1.0, slowdown=5.0, random_state=0)
        model.sample_factors(4)
        model.sample_factors(4)
        summary = model.summary()
        assert summary["rounds"] == 2
        assert summary["max_factor"] == pytest.approx(5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StragglerModel(slowdown=0.5)
        with pytest.raises(ValueError):
            StragglerModel(probability=1.5)
        with pytest.raises(ValueError):
            StragglerModel(jitter=-1.0)
        with pytest.raises(ValueError):
            StragglerModel().sample_factors(0)

    def test_straggling_cluster_has_larger_epoch_time(self, small_dataset):
        def run(straggler):
            cluster = SimulatedCluster(
                small_dataset, 4, straggler=straggler, random_state=0
            )
            solver = NewtonADMM(lam=1e-3, max_epochs=3, record_accuracy=False)
            return solver.fit(cluster).final.compute_time

        baseline = run(None)
        slowed = run(StragglerModel(slowdown=10.0, persistent_stragglers=[0]))
        assert slowed > baseline * 5

    def test_straggler_does_not_change_iterates(self, small_dataset):
        def final_w(straggler):
            cluster = SimulatedCluster(
                small_dataset, 4, straggler=straggler, random_state=0
            )
            solver = NewtonADMM(lam=1e-3, max_epochs=3, record_accuracy=False)
            return solver.fit(cluster).final_w

        np.testing.assert_allclose(
            final_w(None),
            final_w(StragglerModel(slowdown=10.0, probability=0.5, random_state=0)),
        )


class TestHeterogeneousDevices:
    def test_per_worker_devices_accepted(self, small_dataset):
        devices = [tesla_p100(), cpu_xeon_gold(), tesla_p100(), cpu_xeon_gold()]
        cluster = SimulatedCluster(small_dataset, 4, device=devices, random_state=0)
        assert [w.device.name for w in cluster.workers] == [d.name for d in devices]

    def test_wrong_device_count_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            SimulatedCluster(small_dataset, 4, device=[tesla_p100()] * 3)

    def test_slow_device_dominates_epoch_time(self, small_dataset):
        slow = DeviceModel(
            name="slow", peak_flops=1e9, memory_bandwidth=1e9, efficiency=0.5
        )
        fast_cluster = SimulatedCluster(
            small_dataset, 2, device=tesla_p100(), random_state=0
        )
        mixed_cluster = SimulatedCluster(
            small_dataset, 2, device=[tesla_p100(), slow], random_state=0
        )
        solver = NewtonADMM(lam=1e-3, max_epochs=2, record_accuracy=False)
        fast_time = solver.fit(fast_cluster).final.compute_time
        mixed_time = solver.fit(mixed_cluster).final.compute_time
        assert mixed_time > fast_time * 10


class TestAsynchronousSGD:
    def make_cluster(self, small_dataset, n_workers=4):
        return SimulatedCluster(small_dataset, n_workers, random_state=0)

    def test_objective_decreases(self, small_dataset):
        cluster = self.make_cluster(small_dataset)
        solver = AsynchronousSGD(
            lam=1e-3, max_epochs=10, step_size=0.5, batch_size=32, random_state=0
        )
        trace = solver.fit(cluster)
        assert trace.final.objective < trace.records[0].objective
        assert np.isfinite(trace.final.objective)

    def test_staleness_emerges_from_schedule(self, small_dataset):
        # With homogeneous workers the pipeline ramps up 0, 1, 2, 3 and then
        # settles at the round-robin steady state N - 1 = 3: the old
        # closed-form assumption is now the *measured* steady state.
        cluster = self.make_cluster(small_dataset, n_workers=4)
        solver = AsynchronousSGD(lam=1e-3, max_epochs=2, random_state=0)
        trace = solver.fit(cluster)
        assert trace.final.extras["staleness_mode"] == "measured"
        assert trace.final.extras["max_staleness"] == 3.0
        assert solver.staleness_log[:4] == [0, 1, 2, 3]
        assert solver.staleness_log[4:] == [3] * (len(solver.staleness_log) - 4)

    def test_straggler_inflates_measured_staleness(self, small_dataset):
        # A persistently slow worker pushes rarely; everyone else's gradients
        # stay fresh but the slow worker's arrive many versions late.
        cluster = SimulatedCluster(
            small_dataset,
            4,
            straggler=StragglerModel(slowdown=8.0, persistent_stragglers=[0]),
            random_state=0,
        )
        solver = AsynchronousSGD(lam=1e-3, max_epochs=4, random_state=0)
        solver.fit(cluster)
        assert max(solver.staleness_log) > 3

    def test_zero_staleness_matches_serial_updates(self, small_dataset):
        cluster = self.make_cluster(small_dataset)
        solver = AsynchronousSGD(
            lam=1e-3, max_epochs=5, step_size=0.2, staleness=0, random_state=0
        )
        trace = solver.fit(cluster)
        assert np.isfinite(trace.final.objective)
        assert trace.final.extras["staleness"] == 0.0

    def test_high_staleness_converges_slower_than_fresh_updates(self, small_dataset):
        # The claim the paper makes when it restricts the comparison to
        # synchronous SGD: stale gradient updates slow convergence.  Here the
        # only difference between the two runs is the staleness, so the
        # comparison isolates exactly that effect.
        def run(staleness):
            cluster = self.make_cluster(small_dataset)
            return AsynchronousSGD(
                lam=1e-3,
                max_epochs=10,
                step_size=1.0,
                batch_size=32,
                staleness=staleness,
                random_state=0,
            ).fit(cluster)

        fresh = run(0)
        stale = run(40)
        assert fresh.final.objective <= stale.final.objective + 1e-9

    def test_epoch_advances_both_clock_categories(self, small_dataset):
        cluster = self.make_cluster(small_dataset)
        trace = AsynchronousSGD(lam=1e-3, max_epochs=2, random_state=0).fit(cluster)
        assert trace.final.comm_time > 0
        assert trace.final.modelled_time >= trace.final.comm_time

    def test_comm_bytes_accounted(self, small_dataset):
        cluster = self.make_cluster(small_dataset)
        AsynchronousSGD(lam=1e-3, max_epochs=1, random_state=0).fit(cluster)
        assert cluster.comm.log.bytes_transferred > 0

    def test_steps_per_epoch_override(self, small_dataset):
        cluster = self.make_cluster(small_dataset)
        trace = AsynchronousSGD(
            lam=1e-3, max_epochs=1, steps_per_epoch=7, random_state=0
        ).fit(cluster)
        assert trace.final.extras["updates"] == 7.0

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            AsynchronousSGD(step_size=0.0)
        with pytest.raises(ValueError):
            AsynchronousSGD(batch_size=0)
        with pytest.raises(ValueError):
            AsynchronousSGD(staleness=-1)

    def test_registered_in_solver_registry(self):
        from repro.harness.runner import SOLVER_REGISTRY

        assert SOLVER_REGISTRY["async_sgd"] is AsynchronousSGD

    def test_deterministic_given_seed(self, small_dataset):
        results = []
        for _ in range(2):
            cluster = self.make_cluster(small_dataset)
            trace = AsynchronousSGD(
                lam=1e-3, max_epochs=3, step_size=0.3, random_state=5
            ).fit(cluster)
            results.append(trace.final_w)
        np.testing.assert_array_equal(results[0], results[1])
