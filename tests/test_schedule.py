"""Tests for the round-schedule IR: plan structure, declared-round checking,
golden-trace equivalence of every ported solver on both engines, the GIANT
overlap variant, per-epoch Gantt slicing, and hyper-parameter provenance."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.baselines.aide import AIDE
from repro.baselines.cocoa import CoCoA
from repro.baselines.dane import InexactDANE
from repro.baselines.disco import DiSCO
from repro.baselines.giant import GIANT
from repro.baselines.sync_sgd import SynchronousSGD
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.network import wan_slow
from repro.distributed.schedule import (
    Collective,
    RoundPlan,
    ScheduleError,
    execute_plan,
)
from repro.harness.plotting import format_schedule, plot_gantt
from repro.metrics.timeline import slice_epoch

GOLDEN_PATH = Path(__file__).parent / "golden" / "schedule_equivalence.json"

#: solver name -> factory; mirrors tests/golden/generate_schedule_goldens.py
SOLVER_FACTORIES = {
    "newton_admm": lambda: NewtonADMM(lam=1e-3, max_epochs=4, record_accuracy=False),
    "giant": lambda: GIANT(lam=1e-3, max_epochs=4, record_accuracy=False),
    "inexact_dane": lambda: InexactDANE(lam=1e-3, max_epochs=2, record_accuracy=False),
    "aide": lambda: AIDE(lam=1e-3, max_epochs=2, tau=0.5, record_accuracy=False),
    "disco": lambda: DiSCO(lam=1e-3, max_epochs=3, record_accuracy=False),
    "cocoa": lambda: CoCoA(lam=1e-3, max_epochs=3, record_accuracy=False),
    "sync_sgd": lambda: SynchronousSGD(
        lam=1e-3, max_epochs=2, step_size=0.2, record_accuracy=False
    ),
}

#: statically declarable communication rounds per outer iteration
DECLARED_ROUNDS = {
    "newton_admm": 1,
    "giant": 3,
    "inexact_dane": 2,
    "aide": 2,
    "disco": None,  # one all-reduce per CG matvec — data-dependent
    "cocoa": 1,
    "sync_sgd": 1,  # one per mini-batch step; one step at this shard size
}


@pytest.fixture(scope="module")
def dataset():
    return make_multiclass_gaussian(240, 10, 3, class_separation=3.0, random_state=0)


@pytest.fixture(scope="module")
def binary_dataset():
    return make_multiclass_gaussian(200, 8, 2, class_separation=3.0, random_state=1)


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _dataset_for(name, dataset, binary_dataset):
    return binary_dataset if name == "cocoa" else dataset


# ---------------------------------------------------------------------------
# IR structure
# ---------------------------------------------------------------------------
class TestRoundPlanStructure:
    def test_declared_rounds_count_opening_collectives(self):
        plan = RoundPlan("demo")
        plan.local("a", lambda w, ctx: 0.0)
        plan.allreduce("s", lambda ctx: ctx["a"])
        plan.reduce_scalar("r", lambda ctx: ctx["a"], joint_with_previous=True)
        plan.allreduce("t", lambda ctx: ctx["a"])
        assert plan.declared_rounds == 2
        assert plan.declared_collectives == 3
        assert plan.is_static

    def test_dynamic_step_makes_rounds_undeclarable(self):
        plan = RoundPlan("demo")
        plan.allreduce("s", lambda ctx: [])
        plan.dynamic("inner", lambda cluster, ctx: None)
        assert plan.declared_rounds is None
        assert not plan.is_static

    def test_describe_is_serializable(self):
        plan = RoundPlan("demo")
        plan.local("a", lambda w, ctx: 0.0, label="work")
        plan.allreduce("s", lambda ctx: ctx["a"], overlap=True)
        description = plan.describe()
        json.dumps(description)  # must round-trip to JSON for traces
        assert description["plan"] == "demo"
        assert description["rounds"] == 1
        assert description["overlapped"] == 1
        assert [s["step"] for s in description["steps"]] == ["local", "collective"]

    def test_repeat_multiplies_declared_counts_with_constant_description(self):
        def body(b):
            b.local("g", lambda w, ctx: 0.0)
            b.allreduce("s", lambda ctx: ctx["g"])

        small, large = RoundPlan("few"), RoundPlan("many")
        small.repeat(2, body)
        large.repeat(500, body)
        assert small.declared_rounds == 2
        assert large.declared_rounds == 500
        assert large.declared_collectives == 500
        # The recorded structure is one body + a count, not 500 copies.
        assert large.describe()["steps"] == [
            {
                "step": "repeat",
                "times": 500,
                "steps": small.describe()["steps"][0]["steps"],
            }
        ]

    def test_repeat_executes_body_times(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        plan = RoundPlan("looped", context={"total": 0.0})

        def body(b):
            b.local("g", lambda w, ctx: 1.0)
            b.allreduce("s", lambda ctx: ctx["g"])
            b.master(lambda ctx: ctx.__setitem__("total", ctx["total"] + ctx["s"]))

        plan.repeat(3, body)
        plan.returns("total")
        execution = execute_plan(cluster, plan)
        assert execution.rounds == 3
        assert execution.result == 3 * 4.0  # 3 rounds x 4 workers' ones

    def test_unknown_collective_op_rejected(self):
        with pytest.raises(ValueError):
            Collective("x", "alltoallv", lambda ctx: [])

    def test_reduce_scalar_cannot_overlap(self):
        with pytest.raises(ValueError):
            Collective("x", "reduce_scalar", lambda ctx: [], overlap=True)


class TestDeclaredRoundChecking:
    def test_hidden_communication_raises_schedule_error(self, dataset):
        # A plan whose master step smuggles an extra collective past the
        # declared structure must be rejected by the engine check.
        cluster = SimulatedCluster(dataset, 4, random_state=0)

        plan = RoundPlan("smuggler")
        plan.local("g", lambda w, ctx: np.zeros(cluster.dim))
        plan.allreduce("s", lambda ctx: ctx["g"])
        plan.master(
            lambda ctx: cluster.comm.allreduce(ctx["g"])  # undeclared round
        )
        with pytest.raises(ScheduleError, match="declares 1"):
            execute_plan(cluster, plan)

    def test_check_can_be_disabled(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        plan = RoundPlan("smuggler")
        plan.local("g", lambda w, ctx: np.zeros(cluster.dim))
        plan.allreduce("s", lambda ctx: ctx["g"])
        plan.master(lambda ctx: cluster.comm.allreduce(ctx["g"]))
        execution = execute_plan(cluster, plan, check=False)
        assert execution.rounds == 2

    def test_reading_in_flight_overlap_result_rejected(self, dataset):
        # Overlap models bytes still on the wire: a plan that consumes the
        # overlapped collective's value before a Join describes a schedule no
        # real cluster can run, and the executor rejects it.
        cluster = SimulatedCluster(dataset, 4, engine="event", random_state=0)
        plan = RoundPlan("premature-read")
        plan.local("g", lambda w, ctx: np.zeros(cluster.dim))
        plan.allreduce("s", lambda ctx: ctx["g"], overlap=True)
        plan.master(lambda ctx: ctx["s"] * 2.0)  # reads before the join
        with pytest.raises(ScheduleError, match="overlapped"):
            execute_plan(cluster, plan)

    def test_get_is_not_a_guard_bypass(self, dataset):
        cluster = SimulatedCluster(dataset, 4, engine="event", random_state=0)
        plan = RoundPlan("get-bypass")
        plan.local("g", lambda w, ctx: np.zeros(cluster.dim))
        plan.allreduce("s", lambda ctx: ctx["g"], overlap=True)
        plan.master(lambda ctx: ctx.get("s"))
        with pytest.raises(ScheduleError, match="overlapped"):
            execute_plan(cluster, plan)

    def test_plan_must_end_joined(self, dataset):
        # An unjoined background transfer would leak into the next epoch's
        # accounting; the executor requires the plan to end joined.
        cluster = SimulatedCluster(dataset, 4, engine="event", random_state=0)
        plan = RoundPlan("leaky")
        plan.local("g", lambda w, ctx: np.zeros(cluster.dim))
        plan.allreduce("s", lambda ctx: ctx["g"], overlap=True)
        with pytest.raises(ScheduleError, match="in flight"):
            execute_plan(cluster, plan)

    def test_joined_overlap_result_readable(self, dataset):
        cluster = SimulatedCluster(dataset, 4, engine="event", random_state=0)
        plan = RoundPlan("joined-read")
        plan.local("g", lambda w, ctx: np.ones(cluster.dim))
        plan.allreduce("s", lambda ctx: ctx["g"], overlap=True)
        plan.local("hide", lambda w, ctx: float(w.worker_id))  # independent work
        plan.join()
        plan.master(lambda ctx: ctx["s"], name="out")
        plan.returns("out")
        execution = execute_plan(cluster, plan)
        assert np.array_equal(execution.result, 4.0 * np.ones(cluster.dim))

    def test_execution_summary(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        plan = RoundPlan("one-round")
        plan.local("g", lambda w, ctx: np.zeros(cluster.dim))
        plan.allreduce("s", lambda ctx: ctx["g"])
        plan.returns("s")
        execution = execute_plan(cluster, plan)
        assert execution.rounds == 1
        assert execution.collectives == 1
        assert execution.bytes_transferred > 0
        assert np.array_equal(execution.result, np.zeros(cluster.dim))


# ---------------------------------------------------------------------------
# Golden-trace equivalence: the refactor changed no float
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestGoldenEquivalence:
    """Every ported solver replays the pre-refactor imperative path exactly:
    bit-identical iterates, identical modelled times and communication totals,
    on both the lock-step and the event engine."""

    @pytest.mark.parametrize("name", sorted(SOLVER_FACTORIES))
    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_matches_pre_refactor_golden(
        self, name, mode, dataset, binary_dataset, golden
    ):
        data = _dataset_for(name, dataset, binary_dataset)
        cluster = SimulatedCluster(data, 4, engine=mode, random_state=0)
        trace = SOLVER_FACTORIES[name]().fit(cluster)
        expected = golden[name]
        assert trace.final_w.tolist() == expected["final_w"]
        assert [r.objective for r in trace.records] == expected["objectives"]
        assert [r.modelled_time for r in trace.records] == expected["modelled_times"]
        assert [r.comm_time for r in trace.records] == expected["comm_times"]
        assert cluster.comm.log.n_rounds == expected["comm_rounds"]
        assert cluster.comm.log.n_collectives == expected["n_collectives"]
        assert cluster.comm.log.bytes_transferred == expected["bytes_transferred"]

    @pytest.mark.parametrize("name", sorted(SOLVER_FACTORIES))
    def test_schedule_declares_expected_rounds(
        self, name, dataset, binary_dataset
    ):
        data = _dataset_for(name, dataset, binary_dataset)
        cluster = SimulatedCluster(data, 4, random_state=0)
        trace = SOLVER_FACTORIES[name]().fit(cluster)
        schedule = trace.info["schedule"]
        assert schedule["declared"]["rounds"] == DECLARED_ROUNDS[name]
        for epoch_row in schedule["epochs"]:
            if DECLARED_ROUNDS[name] is not None:
                assert epoch_row["rounds"] == DECLARED_ROUNDS[name]
            else:
                assert epoch_row["rounds"] >= 1

    def test_schedule_info_serializable(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        trace = NewtonADMM(lam=1e-3, max_epochs=2, record_accuracy=False).fit(cluster)
        json.dumps(trace.info["schedule"])

    def test_format_schedule_renders_declared_structure(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        trace = NewtonADMM(lam=1e-3, max_epochs=3, record_accuracy=False).fit(cluster)
        art = format_schedule(trace)
        assert "1 communication round(s)/epoch" in art
        assert "allreduce(payload_sum)" in art
        assert "[joint]" in art
        assert "min 1 max 1" in art


# ---------------------------------------------------------------------------
# GIANT overlap variant
# ---------------------------------------------------------------------------
class TestGiantOverlap:
    def test_iterates_identical_time_strictly_lower_on_event(self, dataset):
        traces = {}
        for overlap in (False, True):
            cluster = SimulatedCluster(
                dataset, 4, engine="event", network=wan_slow(), random_state=0
            )
            traces[overlap] = GIANT(
                lam=1e-3, max_epochs=3, overlap_gradient=overlap,
                record_accuracy=False,
            ).fit(cluster)
        assert np.array_equal(traces[False].final_w, traces[True].final_w)
        assert traces[True].final.modelled_time < traces[False].final.modelled_time
        # Still three declared rounds — overlap changes *when* the transfer
        # moves, not the round structure.
        declared = traces[True].info["schedule"]["declared"]
        assert declared["rounds"] == 3
        assert declared["overlapped"] == 1

    def test_lockstep_charges_overlap_in_full(self, dataset):
        traces = {}
        for overlap in (False, True):
            cluster = SimulatedCluster(
                dataset, 4, engine="lockstep", network=wan_slow(), random_state=0
            )
            traces[overlap] = GIANT(
                lam=1e-3, max_epochs=3, overlap_gradient=overlap,
                record_accuracy=False,
            ).fit(cluster)
        assert np.array_equal(traces[False].final_w, traces[True].final_w)
        # Identical communication (the transfer is charged in full without an
        # event engine); the hoisted f(w) evaluation costs one extra kernel
        # launch per epoch, so the lock-step overlap variant is never faster.
        assert traces[True].final.comm_time == traces[False].final.comm_time
        overhead = (
            traces[True].final.compute_time - traces[False].final.compute_time
        )
        assert overhead > 0
        assert traces[True].final.modelled_time == pytest.approx(
            traces[False].final.modelled_time + overhead
        )

    def test_background_lane_recorded(self, dataset):
        cluster = SimulatedCluster(
            dataset, 4, engine="event", network=wan_slow(), random_state=0
        )
        trace = GIANT(
            lam=1e-3, max_epochs=2, overlap_gradient=True, record_accuracy=False
        ).fit(cluster)
        assert any(tl.get("background") for tl in trace.info["timelines"])


# ---------------------------------------------------------------------------
# Per-epoch timeline deltas
# ---------------------------------------------------------------------------
class TestEpochGantt:
    @pytest.fixture(scope="class")
    def event_trace(self, dataset):
        cluster = SimulatedCluster(dataset, 4, engine="event", random_state=0)
        return NewtonADMM(lam=1e-3, max_epochs=4, record_accuracy=False).fit(cluster)

    def test_boundaries_recorded_per_epoch(self, event_trace):
        boundaries = event_trace.info["timeline_epochs"]["boundaries"]
        assert len(boundaries) == 4  # one snapshot per executed epoch
        assert all(len(b) == 4 for b in boundaries)  # one clock per worker
        # Boundaries are non-decreasing per worker.
        for i in range(4):
            times = [b[i] for b in boundaries]
            assert times == sorted(times)

    def test_epoch_slices_partition_the_fit(self, event_trace):
        from repro.metrics.timeline import timelines_from_dicts

        timelines = timelines_from_dicts(event_trace.info["timelines"])
        boundaries = event_trace.info["timeline_epochs"]["boundaries"]
        for worker in range(4):
            total = sum(seg.duration for seg in timelines[worker].segments)
            sliced_total = 0.0
            for epoch in range(1, len(boundaries) + 1):
                cut = slice_epoch(timelines, boundaries, epoch)[worker]
                sliced_total += sum(seg.duration for seg in cut.segments)
            assert sliced_total == pytest.approx(total)

    def test_plot_gantt_accepts_trace_and_epoch(self, event_trace):
        full = plot_gantt(event_trace)
        single = plot_gantt(event_trace, epoch=2)
        assert "w0" in full and "w0" in single
        assert "epoch 2" in single
        # A single epoch spans strictly less time than the whole fit.
        span_full = float(full.splitlines()[0].split("..")[1].split("s")[0])
        span_epoch = float(
            single.splitlines()[1].split("..")[1].split("s")[0]
        )
        assert span_epoch < span_full

    def test_epoch_out_of_range_rejected(self, event_trace):
        with pytest.raises(ValueError):
            plot_gantt(event_trace, epoch=99)

    def test_epoch_needs_a_trace(self, event_trace):
        with pytest.raises(ValueError, match="RunTrace"):
            plot_gantt(event_trace.info["timelines"], epoch=1)

    def test_lockstep_trace_has_no_timelines(self, dataset):
        cluster = SimulatedCluster(dataset, 4, engine="lockstep", random_state=0)
        trace = NewtonADMM(lam=1e-3, max_epochs=2, record_accuracy=False).fit(cluster)
        assert "timelines" not in trace.info
        with pytest.raises(ValueError, match="no recorded timelines"):
            plot_gantt(trace)


# ---------------------------------------------------------------------------
# Hyper-parameter provenance (repr fallback instead of silent drop)
# ---------------------------------------------------------------------------
class TestHyperparameterProvenance:
    def test_none_and_scalars_pass_through(self):
        solver = NewtonADMM(lam=1e-3, rho0=None)
        params = solver.hyperparameters()
        assert params["rho0"] is None  # previously silently dropped
        assert params["lam"] == 1e-3
        assert params["penalty"] == "spectral"

    def test_non_scalars_serialized_via_repr(self, dataset):
        solver = SynchronousSGD(
            lam=1e-3, max_epochs=1, steps_per_epoch=None,
            random_state=np.random.default_rng(0),
        )
        params = solver.hyperparameters()
        assert params["steps_per_epoch"] is None
        assert isinstance(params["random_state"], str)  # repr fallback
        assert " at 0x" not in params["random_state"]  # address-free, stable
        json.dumps(params)

    def test_repr_fallback_is_deterministic_across_instances(self):
        a = SynchronousSGD(lam=1e-3, random_state=np.random.default_rng(0))
        b = SynchronousSGD(lam=1e-3, random_state=np.random.default_rng(0))
        assert a.hyperparameters() == b.hyperparameters()

    def test_run_state_logs_stay_out_of_provenance(self, dataset):
        # staleness_log is run state behind a read-only property; the repr
        # fallback must not sweep a previous run's log into the next trace.
        from repro.admm.async_newton_admm import AsyncNewtonADMM

        cluster = SimulatedCluster(dataset, 4, engine="event", random_state=0)
        solver = AsyncNewtonADMM(lam=1e-3, max_epochs=3, record_accuracy=False)
        solver.fit(cluster)
        assert solver.staleness_log  # populated by the run...
        assert "staleness_log" not in solver.hyperparameters()  # ...not recorded
        cluster.reset_accounting()
        trace = solver.fit(cluster)
        assert "staleness_log" not in trace.info["hyperparameters"]

    def test_typoed_returns_key_fails_at_the_plan(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        plan = RoundPlan("typo")
        plan.local("g", lambda w, ctx: 0.0)
        plan.returns("gg")
        with pytest.raises(KeyError):
            execute_plan(cluster, plan)

    def test_trace_provenance_keeps_every_hyperparameter(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        trace = GIANT(lam=1e-3, max_epochs=1, record_accuracy=False).fit(cluster)
        recorded = trace.info["hyperparameters"]
        public_attrs = {
            k for k in vars(GIANT(lam=1e-3)) if not k.startswith("_")
        }
        assert public_attrs <= set(recorded)
        json.dumps(recorded)
