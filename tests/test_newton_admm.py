"""Integration-level tests for the Newton-ADMM solver (the core contribution)."""

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.admm.penalty import FixedPenalty
from repro.distributed.cluster import SimulatedCluster
from repro.harness.runner import reference_optimum


class TestNewtonADMMBasics:
    def test_objective_decreases_substantially(self, small_multiclass_split):
        train, test = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        trace = NewtonADMM(lam=1e-4, max_epochs=15).fit(cluster, test=test)
        start = np.log(train.n_classes)
        assert trace.final.objective < 0.5 * start

    def test_converges_close_to_single_node_optimum(self, small_multiclass_split):
        train, _ = small_multiclass_split
        lam = 1e-3
        cluster = SimulatedCluster(train, 4, random_state=0)
        trace = NewtonADMM(lam=lam, max_epochs=40).fit(cluster)
        _, f_star = reference_optimum(train, lam, max_iterations=60, cg_max_iter=80)
        assert trace.best_objective() <= f_star + 0.05 * abs(f_star) + 1e-3

    def test_one_communication_round_per_iteration(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        epochs = 7
        trace = NewtonADMM(lam=1e-4, max_epochs=epochs).fit(cluster)
        # The paper's Remark 1: exactly one round (gather + scatter) per iteration.
        assert trace.final.comm_rounds == epochs

    def test_trace_records_one_per_epoch(self, small_multiclass_split):
        train, test = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        trace = NewtonADMM(lam=1e-4, max_epochs=6).fit(cluster, test=test)
        assert trace.n_epochs == 6
        assert [r.epoch for r in trace.records] == list(range(1, 7))
        assert np.all(np.diff(trace.times("modelled")) > 0)

    def test_accuracy_reported(self, small_multiclass_split):
        train, test = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        trace = NewtonADMM(lam=1e-4, max_epochs=10).fit(cluster, test=test)
        assert 0.0 <= trace.final.test_accuracy <= 1.0
        assert trace.final.test_accuracy > 1.5 / train.n_classes

    def test_deterministic_across_runs(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        a = NewtonADMM(lam=1e-4, max_epochs=5).fit(cluster)
        b = NewtonADMM(lam=1e-4, max_epochs=5).fit(cluster)
        np.testing.assert_allclose(a.final_w, b.final_w)
        np.testing.assert_allclose(a.objectives(), b.objectives())

    def test_single_worker_close_to_newton(self, small_multiclass_split):
        train, _ = small_multiclass_split
        lam = 1e-3
        cluster = SimulatedCluster(train, 1, random_state=0)
        trace = NewtonADMM(lam=lam, max_epochs=25).fit(cluster)
        _, f_star = reference_optimum(train, lam, max_iterations=60, cg_max_iter=80)
        assert trace.best_objective() <= f_star + 0.05 * abs(f_star) + 1e-3

    def test_extras_present(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 3, random_state=0)
        trace = NewtonADMM(lam=1e-4, max_epochs=3).fit(cluster)
        for key in ("primal_residual", "dual_residual", "mean_rho", "local_cg_iters"):
            assert key in trace.final.extras

    def test_modelled_time_split(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        trace = NewtonADMM(lam=1e-4, max_epochs=4).fit(cluster)
        final = trace.final
        assert final.compute_time > 0
        assert final.comm_time > 0
        assert final.modelled_time == pytest.approx(
            final.compute_time + final.comm_time
        )


class TestNewtonADMMOptions:
    def test_penalty_policies_all_run(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        results = {}
        for penalty in ("spectral", "residual_balancing", "fixed"):
            trace = NewtonADMM(lam=1e-4, max_epochs=8, penalty=penalty).fit(cluster)
            results[penalty] = trace.final.objective
            assert np.isfinite(trace.final.objective)
        assert len(results) == 3

    def test_custom_policy_factory(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 2, random_state=0)
        trace = NewtonADMM(
            lam=1e-4, max_epochs=4, penalty=lambda: FixedPenalty(0.01)
        ).fit(cluster)
        assert trace.final.extras["mean_rho"] == pytest.approx(0.01)

    def test_explicit_rho0_used(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 2, random_state=0)
        trace = NewtonADMM(lam=1e-4, max_epochs=2, rho0=0.5, penalty="fixed").fit(cluster)
        assert trace.final.extras["mean_rho"] == pytest.approx(0.5)

    def test_auto_rho0_scales_with_dataset(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 2, random_state=0)
        trace = NewtonADMM(lam=1e-4, max_epochs=2, penalty="fixed").fit(cluster)
        assert trace.final.extras["mean_rho"] == pytest.approx(1.0 / train.n_samples)

    def test_more_cg_iterations_lower_objective_per_epoch(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        small_cg = NewtonADMM(lam=1e-4, max_epochs=6, cg_max_iter=1, cg_tol=1e-12).fit(cluster)
        big_cg = NewtonADMM(lam=1e-4, max_epochs=6, cg_max_iter=30, cg_tol=1e-12).fit(cluster)
        assert big_cg.best_objective() <= small_cg.best_objective() + 1e-6

    def test_local_newton_iters_option(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 2, random_state=0)
        trace = NewtonADMM(lam=1e-4, max_epochs=3, local_newton_iters=3).fit(cluster)
        assert trace.final.extras["local_newton_iters"] <= 3

    def test_w0_respected(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 2, random_state=0)
        solver = NewtonADMM(lam=1e-3, max_epochs=1)
        w0 = np.full(cluster.dim, 0.1)
        trace = solver.fit(cluster, w0=w0)
        assert trace.final_w.shape == (cluster.dim,)

    def test_wrong_w0_length_rejected(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 2, random_state=0)
        with pytest.raises(ValueError):
            NewtonADMM(lam=1e-3, max_epochs=1).fit(cluster, w0=np.zeros(3))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            NewtonADMM(rho0=-1.0)
        with pytest.raises(ValueError):
            NewtonADMM(local_newton_iters=0)
        with pytest.raises(ValueError):
            NewtonADMM(max_epochs=0)
        with pytest.raises(ValueError):
            NewtonADMM(lam=-1e-3)

    def test_evaluate_every(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 2, random_state=0)
        trace = NewtonADMM(lam=1e-4, max_epochs=6, evaluate_every=3).fit(cluster)
        assert [r.epoch for r in trace.records] == [3, 6]

    def test_grad_tolerance_early_stop(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 2, random_state=0)
        trace = NewtonADMM(lam=1e-2, max_epochs=60, tol_grad=1e-2).fit(cluster)
        assert trace.n_epochs < 60


class TestNewtonADMMBinary:
    def test_binary_problem(self, tiny_binary):
        cluster = SimulatedCluster(tiny_binary, 3, random_state=0)
        trace = NewtonADMM(lam=1e-3, max_epochs=15).fit(cluster)
        assert trace.final.objective < np.log(2)
        assert trace.final.train_accuracy > 0.6

    def test_sparse_highdim_problem(self, tiny_sparse):
        cluster = SimulatedCluster(tiny_sparse, 2, random_state=0)
        trace = NewtonADMM(lam=1e-3, max_epochs=10).fit(cluster)
        assert np.isfinite(trace.final.objective)
        assert trace.final.objective < np.log(tiny_sparse.n_classes)
