"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import check_random_state, spawn_rngs


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_random_state(42).integers(0, 1000, size=10)
        b = check_random_state(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).integers(0, 10**9, size=10)
        b = check_random_state(2).integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        gen = check_random_state(ss)
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            check_random_state("not-a-seed")

    def test_numpy_integer_seed(self):
        gen = check_random_state(np.int64(5))
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        children = spawn_rngs(0, 3)
        draws = [c.standard_normal(50) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_reproducible_from_int_seed(self):
        a = [g.standard_normal(10) for g in spawn_rngs(99, 3)]
        b = [g.standard_normal(10) for g in spawn_rngs(99, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_salt_changes_streams(self):
        a = spawn_rngs(0, 2, salt=[1])[0].standard_normal(10)
        b = spawn_rngs(0, 2, salt=[2])[0].standard_normal(10)
        assert not np.allclose(a, b)

    def test_generator_parent_accepted(self):
        parent = np.random.default_rng(3)
        children = spawn_rngs(parent, 2)
        assert len(children) == 2
