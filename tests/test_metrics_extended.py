"""Tests for the extended classification metrics (top-k, precision/recall/F1, AUC)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    precision_recall_f1,
    roc_auc,
    top_k_accuracy,
)


class TestTopKAccuracy:
    def test_top_1_equals_accuracy(self):
        rng = np.random.default_rng(0)
        scores = rng.standard_normal((50, 4))
        y = rng.integers(0, 4, 50)
        preds = scores.argmax(axis=1)
        assert top_k_accuracy(y, scores, k=1) == pytest.approx(accuracy(y, preds))

    def test_top_full_is_one(self):
        rng = np.random.default_rng(1)
        scores = rng.standard_normal((30, 5))
        y = rng.integers(0, 5, 30)
        assert top_k_accuracy(y, scores, k=5) == 1.0

    def test_monotone_in_k(self):
        rng = np.random.default_rng(2)
        scores = rng.standard_normal((40, 6))
        y = rng.integers(0, 6, 40)
        values = [top_k_accuracy(y, scores, k=k) for k in range(1, 7)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_invalid_inputs(self):
        scores = np.zeros((10, 3))
        y = np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            top_k_accuracy(y, scores, k=0)
        with pytest.raises(ValueError):
            top_k_accuracy(y, scores, k=4)
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros(5, dtype=int), scores)


class TestPrecisionRecallF1:
    def test_perfect_predictions(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        out = precision_recall_f1(y, y, 3)
        assert out["precision"] == 1.0
        assert out["recall"] == 1.0
        assert out["f1"] == 1.0

    def test_known_binary_case(self):
        y_true = np.array([1, 1, 1, 1, 0, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 0, 1, 0, 0, 0])
        out = precision_recall_f1(y_true, y_pred, 2, average="none")
        # class 1: tp=2, fp=1, fn=2 -> precision 2/3, recall 1/2
        assert out["precision"][1] == pytest.approx(2 / 3)
        assert out["recall"][1] == pytest.approx(0.5)

    def test_micro_equals_accuracy_for_single_label(self):
        rng = np.random.default_rng(3)
        y_true = rng.integers(0, 4, 60)
        y_pred = rng.integers(0, 4, 60)
        micro = precision_recall_f1(y_true, y_pred, 4, average="micro")
        assert micro["f1"] == pytest.approx(accuracy(y_true, y_pred))

    def test_macro_handles_empty_class(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 0, 0])
        out = precision_recall_f1(y_true, y_pred, 3)
        assert 0.0 <= out["f1"] <= 1.0

    def test_invalid_average(self):
        with pytest.raises(ValueError):
            precision_recall_f1([0, 1], [0, 1], 2, average="weighted")

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_values_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 3, 30)
        y_pred = rng.integers(0, 3, 30)
        out = precision_recall_f1(y_true, y_pred, 3)
        for key in ("precision", "recall", "f1"):
            assert 0.0 <= out[key] <= 1.0


class TestRocAuc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 0, 1, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.7, 0.8, 0.9])
        assert roc_auc(y, scores) == 1.0

    def test_inverted_scores_give_zero(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(y, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(4)
        y = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_half_credit(self):
        y = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert roc_auc(y, scores) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(5, dtype=int), np.random.default_rng(0).random(5))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0, 1]), np.array([0.1, 0.2, 0.3]))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_auc_invariant_to_monotone_transform(self, seed):
        rng = np.random.default_rng(seed)
        y = np.concatenate([np.zeros(10, dtype=int), np.ones(10, dtype=int)])
        scores = rng.standard_normal(20)
        a = roc_auc(y, scores)
        b = roc_auc(y, 3.0 * scores + 7.0)  # strictly increasing transform
        assert a == pytest.approx(b)


class TestConfusionMatrixStillWorks:
    def test_diagonal_for_perfect_predictions(self):
        y = np.array([0, 1, 2, 2])
        M = confusion_matrix(y, y, 3)
        assert M.trace() == 4
        assert M.sum() == 4
