"""Tests for the binary logistic and least-squares objectives."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.objectives.least_squares import LeastSquares
from repro.objectives.logistic import BinaryLogistic
from tests.conftest import numerical_gradient


@pytest.fixture()
def binary_problem():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((50, 6))
    w_true = rng.standard_normal(6)
    y = (X @ w_true + 0.3 * rng.standard_normal(50) > 0).astype(int)
    return X, y


class TestBinaryLogistic:
    def test_value_at_zero(self, binary_problem):
        X, y = binary_problem
        obj = BinaryLogistic(X, y)
        np.testing.assert_allclose(obj.value(np.zeros(6)), np.log(2), rtol=1e-12)

    def test_gradient_matches_finite_differences(self, binary_problem):
        X, y = binary_problem
        obj = BinaryLogistic(X, y)
        w = np.random.default_rng(1).standard_normal(6) * 0.3
        np.testing.assert_allclose(
            obj.gradient(w), numerical_gradient(obj.value, w), atol=1e-6
        )

    def test_hvp_matches_dense_hessian(self, binary_problem):
        X, y = binary_problem
        obj = BinaryLogistic(X, y)
        rng = np.random.default_rng(2)
        w = rng.standard_normal(6) * 0.3
        H = obj.hessian(w)
        v = rng.standard_normal(6)
        np.testing.assert_allclose(obj.hvp(w, v), H @ v, atol=1e-8)

    def test_hessian_psd(self, binary_problem):
        X, y = binary_problem
        obj = BinaryLogistic(X, y)
        H = obj.hessian(np.zeros(6))
        assert np.linalg.eigvalsh(H).min() >= -1e-10

    def test_requires_two_classes(self):
        X = np.random.default_rng(0).standard_normal((10, 3))
        with pytest.raises(ValueError):
            BinaryLogistic(X, np.array([0, 1, 2] + [0] * 7))

    def test_predict(self, binary_problem):
        X, y = binary_problem
        obj = BinaryLogistic(X, y)
        w = np.zeros(6)
        for _ in range(200):
            w = w - 1.0 * obj.gradient(w)
        acc = np.mean(obj.predict(w) == y)
        assert acc > 0.85

    def test_predict_proba_range(self, binary_problem):
        X, y = binary_problem
        obj = BinaryLogistic(X, y)
        p = obj.predict_proba(np.random.default_rng(3).standard_normal(6) * 5)
        assert np.all((p >= 0) & (p <= 1))

    def test_sparse_matches_dense(self, binary_problem):
        X, y = binary_problem
        Xs = X.copy()
        Xs[np.abs(Xs) < 0.5] = 0.0
        dense = BinaryLogistic(Xs, y)
        sparse = BinaryLogistic(sp.csr_matrix(Xs), y)
        w = np.random.default_rng(4).standard_normal(6)
        np.testing.assert_allclose(dense.value(w), sparse.value(w), rtol=1e-12)
        np.testing.assert_allclose(dense.gradient(w), sparse.gradient(w), rtol=1e-10)

    def test_value_and_gradient_consistent(self, binary_problem):
        X, y = binary_problem
        obj = BinaryLogistic(X, y)
        w = np.random.default_rng(5).standard_normal(6)
        v, g = obj.value_and_gradient(w)
        np.testing.assert_allclose(v, obj.value(w))
        np.testing.assert_allclose(g, obj.gradient(w))

    def test_scale_sum(self, binary_problem):
        X, y = binary_problem
        mean = BinaryLogistic(X, y, scale="mean")
        total = BinaryLogistic(X, y, scale="sum")
        w = np.ones(6) * 0.2
        np.testing.assert_allclose(total.value(w), 50 * mean.value(w))


class TestLeastSquares:
    @pytest.fixture()
    def ls_problem(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((30, 5))
        b = rng.standard_normal(30)
        return LeastSquares(X, b)

    def test_value_nonnegative(self, ls_problem):
        w = np.random.default_rng(1).standard_normal(5)
        assert ls_problem.value(w) >= 0.0

    def test_gradient_matches_finite_differences(self, ls_problem):
        w = np.random.default_rng(2).standard_normal(5)
        np.testing.assert_allclose(
            ls_problem.gradient(w), numerical_gradient(ls_problem.value, w), atol=1e-6
        )

    def test_gradient_zero_at_normal_equations_solution(self, ls_problem):
        w_star = ls_problem.solve_normal_equations()
        np.testing.assert_allclose(ls_problem.gradient(w_star), 0.0, atol=1e-10)

    def test_hvp_constant_in_w(self, ls_problem):
        rng = np.random.default_rng(3)
        v = rng.standard_normal(5)
        h1 = ls_problem.hvp(rng.standard_normal(5), v)
        h2 = ls_problem.hvp(rng.standard_normal(5), v)
        np.testing.assert_allclose(h1, h2, atol=1e-12)

    def test_regularized_normal_equations(self, ls_problem):
        w_star = ls_problem.solve_normal_equations(reg=0.5)
        grad = ls_problem.gradient(w_star) + 0.5 * w_star
        np.testing.assert_allclose(grad, 0.0, atol=1e-10)

    def test_b_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LeastSquares(np.eye(3), np.zeros(4))

    def test_flops_positive(self, ls_problem):
        assert ls_problem.flops_value() > 0
        assert ls_problem.flops_gradient() > 0
        assert ls_problem.flops_hvp() > 0
