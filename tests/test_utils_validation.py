"""Tests for repro.utils.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.validation import (
    check_array,
    check_in_range,
    check_labels,
    check_positive,
    check_probability,
)


class TestCheckArray:
    def test_dense_passthrough(self):
        X = check_array([[1.0, 2.0], [3.0, 4.0]])
        assert X.dtype == np.float64
        assert X.shape == (2, 2)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError, match="ndim"):
            check_array([1.0, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[np.nan, 1.0]])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="NaN or Inf"):
            check_array([[np.inf, 1.0]])

    def test_sparse_rejected_by_default(self):
        with pytest.raises(TypeError):
            check_array(sp.eye(3).tocsr())

    def test_sparse_allowed(self):
        X = check_array(sp.eye(3).tocoo(), allow_sparse=True)
        assert sp.isspmatrix_csr(X)

    def test_sparse_nan_rejected(self):
        X = sp.csr_matrix(np.array([[np.nan, 0.0], [0.0, 1.0]]))
        with pytest.raises(ValueError):
            check_array(X, allow_sparse=True)

    def test_1d_allowed_when_requested(self):
        v = check_array([1.0, 2.0], ndim=1)
        assert v.shape == (2,)


class TestCheckLabels:
    def test_basic(self):
        y, c = check_labels([0, 1, 2, 1])
        assert c == 3
        assert y.dtype == np.int64

    def test_binary_inferred_as_two_classes(self):
        _, c = check_labels([0, 0, 1])
        assert c == 2

    def test_all_zeros_still_two_classes(self):
        _, c = check_labels([0, 0, 0])
        assert c == 2

    def test_float_integers_accepted(self):
        y, _ = check_labels([0.0, 1.0, 2.0])
        assert y.dtype == np.int64

    def test_non_integer_floats_rejected(self):
        with pytest.raises(ValueError):
            check_labels([0.5, 1.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_labels([-1, 0, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            check_labels([0, 5], n_classes=3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            check_labels([0, 1], n_samples=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_labels([])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            check_labels([[0], [1]])


class TestScalarChecks:
    def test_positive_ok(self):
        assert check_positive(2.0, name="x") == 2.0

    def test_positive_zero_rejected_strict(self):
        with pytest.raises(ValueError):
            check_positive(0.0, name="x")

    def test_positive_zero_allowed_nonstrict(self):
        assert check_positive(0.0, name="x", strict=False) == 0.0

    def test_positive_nan_rejected(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), name="x")

    def test_positive_inf_rejected(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), name="x")

    def test_probability_open_interval(self):
        assert check_probability(0.5, name="p") == 0.5
        with pytest.raises(ValueError):
            check_probability(0.0, name="p")
        with pytest.raises(ValueError):
            check_probability(1.0, name="p")

    def test_probability_inclusive(self):
        assert check_probability(0.0, name="p", inclusive=True) == 0.0
        assert check_probability(1.0, name="p", inclusive=True) == 1.0

    def test_in_range(self):
        assert check_in_range(3, name="x", low=1, high=5) == 3.0
        with pytest.raises(ValueError):
            check_in_range(6, name="x", low=1, high=5)

    def test_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(1, name="x", low=1, high=5, inclusive=False)
