"""Tests for the fault-injection subsystem: the failure model and injector,
deterministic schedules, bit-identical no-fault behavior, the three sync
policies on both engines, quorum ride-through, degraded-membership plans,
Gantt failure markers, the --faults CLI plumbing, and the shared RNG helper."""

import math

import numpy as np
import pytest

from repro.admm.async_newton_admm import AsyncNewtonADMM
from repro.admm.newton_admm import NewtonADMM
from repro.baselines.async_sgd import AsynchronousSGD
from repro.baselines.giant import GIANT
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.faults import FailureModel, WorkerLostError
from repro.distributed.injection import injection_rng, injection_worker_rngs
from repro.distributed.schedule import RoundPlan, execute_plan
from repro.distributed.stragglers import StragglerModel
from repro.harness.plotting import plot_gantt
from repro.metrics.traces import time_to_objective
from repro.utils.rng import check_random_state


@pytest.fixture(scope="module")
def dataset():
    return make_multiclass_gaussian(240, 10, 3, class_separation=3.0, random_state=0)


@pytest.fixture(scope="module")
def nofault_trace(dataset):
    cluster = SimulatedCluster(dataset, 4, random_state=0)
    return NewtonADMM(lam=1e-3, max_epochs=6, record_accuracy=False).fit(cluster)


def _crash_time(nofault_trace, fraction=0.35):
    return fraction * nofault_trace.final.modelled_time


# ---------------------------------------------------------------------------
# FailureModel / FaultInjector
# ---------------------------------------------------------------------------
class TestFailureModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(crash_at_time={0: -1.0})
        with pytest.raises(ValueError):
            FailureModel(crash_at_round={0: 0})
        with pytest.raises(ValueError):
            FailureModel(mtbf=0.0)
        with pytest.raises(ValueError):
            FailureModel(restart_after=0.0)
        with pytest.raises(ValueError):
            FailureModel(crash_at_time={-1: 1.0})

    def test_active_flag(self):
        assert not FailureModel().active
        assert FailureModel(crash_at_time={0: 1.0}).active
        assert FailureModel(mtbf=5.0).active

    def test_from_spec_round_trip(self):
        model = FailureModel.from_spec("0@2.5,w1@r3,mtbf=5.0,restart=1.0,seed=7")
        assert model.crash_at_time == {0: 2.5}
        assert model.crash_at_round == {1: 3}
        assert model.mtbf == 5.0
        assert model.restart_after == 1.0
        assert model.random_state == 7
        assert model == FailureModel.from_spec("w0@2.5, 1@r3, mtbf=5, restart=1, seed=7")

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError):
            FailureModel.from_spec("bogus")
        with pytest.raises(ValueError):
            FailureModel.from_spec("frequency=3")

    def test_describe_is_json_safe(self):
        import json

        json.dumps(FailureModel(crash_at_time={0: 1.0}, mtbf=2.0).describe())

    def test_intervals_and_restart(self):
        injector = FailureModel(crash_at_time={0: 2.0}, restart_after=1.5).start(2)
        assert not injector.is_down(0, 1.9)
        assert injector.is_down(0, 2.0)
        assert injector.is_down(0, 3.4)
        assert not injector.is_down(0, 3.5)
        assert injector.restart_time(0, 2.5) == 3.5
        assert injector.first_crash_in(0, 0.0, 10.0) == 2.0
        assert injector.first_crash_in(1, 0.0, 10.0) is None
        assert injector.crash_time_of(0, 3.0) == 2.0

    def test_no_restart_means_forever(self):
        injector = FailureModel(crash_at_time={0: 2.0}).start(1)
        assert injector.is_down(0, 1e9)
        assert math.isinf(injector.restart_time(0, 2.0))

    def test_mtbf_schedule_is_deterministic_and_per_worker(self):
        def crashes(injector, wid):
            return [injector.first_crash_in(wid, 0.0, 100.0)]

        a = FailureModel(mtbf=10.0, restart_after=1.0, random_state=3).start(4)
        b = FailureModel(mtbf=10.0, restart_after=1.0, random_state=3).start(4)
        # Query b in reverse worker order: schedules must still agree.
        for wid in (3, 2, 1, 0):
            b.first_crash_in(wid, 0.0, 100.0)
        for wid in range(4):
            assert crashes(a, wid) == crashes(b, wid)
        # Different workers draw different first-crash times.
        firsts = {a.first_crash_in(wid, 0.0, 1e6) for wid in range(4)}
        assert len(firsts) == 4

    def test_crash_at_round_triggers_at_round_start(self, dataset):
        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(crash_at_round={2: 2}), random_state=0,
        )
        with pytest.raises(WorkerLostError) as err:
            NewtonADMM(lam=1e-3, max_epochs=4, record_accuracy=False).fit(cluster)
        assert err.value.worker_id == 2
        # Round 1 completes; the crash is armed at the start of sync round 2.
        assert err.value.round >= 2

    def test_worker_lost_error_is_structured(self):
        err = WorkerLostError(3, 1.25, round=7, reason="testing")
        assert err.worker_id == 3
        assert err.time == 1.25
        assert err.round == 7
        assert "worker 3" in str(err) and "testing" in str(err)


# ---------------------------------------------------------------------------
# Shared RNG plumbing (stragglers + faults compose reproducibly)
# ---------------------------------------------------------------------------
class TestInjectionStreams:
    def test_default_stream_matches_check_random_state(self):
        assert injection_rng(42).random() == check_random_state(42).random()

    def test_named_stream_is_independent_of_default(self):
        assert injection_rng(42).random() != injection_rng(42, stream="failures").random()

    def test_worker_streams_are_stable_and_distinct(self):
        a = injection_worker_rngs(0, 3, stream="failures")
        b = injection_worker_rngs(0, 3, stream="failures")
        draws_a = [g.random() for g in a]
        draws_b = [g.random() for g in b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 3

    def test_straggler_draws_unchanged_by_refactor(self):
        # StragglerModel still derives its generator exactly as before the
        # shared helper existed, so historical schedules are unchanged.
        model = StragglerModel(probability=0.5, jitter=0.2, random_state=7)
        rng = check_random_state(7)
        expected = np.ones(4)
        expected *= rng.lognormal(mean=0.0, sigma=0.2, size=4)
        hit = rng.random(4) < 0.5
        expected[hit] *= 4.0
        np.testing.assert_allclose(model.sample_factors(4), expected)

    def test_straggler_and_failure_schedules_compose(self, dataset):
        # Same seed on both models: the straggler factors drawn in a run must
        # not depend on whether a FailureModel is attached.
        def run(faults):
            cluster = SimulatedCluster(
                dataset, 4,
                straggler=StragglerModel(jitter=0.3, random_state=5),
                faults=faults,
                random_state=0,
            )
            trace = NewtonADMM(lam=1e-3, max_epochs=3, record_accuracy=False).fit(cluster)
            return trace.final.modelled_time

        inactive = FailureModel(crash_at_time={0: 1e9}, random_state=5)
        assert run(None) == run(inactive)


# ---------------------------------------------------------------------------
# Bit-identical no-fault behavior
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestInactiveModelIsInvisible:
    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_sync_run_bit_identical(self, mode, dataset):
        def run(faults):
            cluster = SimulatedCluster(dataset, 4, faults=faults, engine=mode,
                                       random_state=0)
            return NewtonADMM(lam=1e-3, max_epochs=5, record_accuracy=False).fit(cluster)

        plain = run(None)
        attached = run(FailureModel(crash_at_time={0: 1e9}, mtbf=None))
        assert np.array_equal(plain.final_w, attached.final_w)
        for a, b in zip(plain.records, attached.records):
            assert a.objective == b.objective
            assert a.modelled_time == b.modelled_time
            assert a.comm_time == b.comm_time
        assert "faults" not in attached.info  # no events => no fault record

    def test_async_run_bit_identical(self, dataset):
        def run(faults):
            cluster = SimulatedCluster(dataset, 4, faults=faults, random_state=0)
            return AsyncNewtonADMM(lam=1e-3, max_epochs=8, record_accuracy=False).fit(cluster)

        plain = run(None)
        attached = run(FailureModel(crash_at_time={0: 1e9}))
        assert np.array_equal(plain.final_w, attached.final_w)
        assert plain.final.modelled_time == attached.final.modelled_time

    def test_async_sgd_bit_identical(self, dataset):
        def run(faults):
            cluster = SimulatedCluster(dataset, 4, faults=faults, random_state=0)
            return AsynchronousSGD(lam=1e-3, max_epochs=2, random_state=0).fit(cluster)

        assert np.array_equal(
            run(None).final_w, run(FailureModel(crash_at_time={0: 1e9})).final_w
        )


# ---------------------------------------------------------------------------
# Sync policies, both engines
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestSyncPolicies:
    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_raise_policy_aborts_with_structured_error(self, mode, dataset, nofault_trace):
        crash = _crash_time(nofault_trace)
        cluster = SimulatedCluster(
            dataset, 4, faults=FailureModel(crash_at_time={1: crash}),
            engine=mode, random_state=0,
        )
        with pytest.raises(WorkerLostError) as err:
            NewtonADMM(lam=1e-3, max_epochs=6, record_accuracy=False).fit(cluster)
        assert err.value.worker_id == 1
        assert err.value.time >= crash * 0.5

    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_stall_policy_completes_identically_but_later(self, mode, dataset, nofault_trace):
        crash = _crash_time(nofault_trace)
        downtime = 0.5 * nofault_trace.final.modelled_time
        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(crash_at_time={1: crash}, restart_after=downtime),
            engine=mode, random_state=0,
        )
        trace = NewtonADMM(
            lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
        ).fit(cluster)
        # Stalling changes no numerics — only modelled time.
        assert np.array_equal(trace.final_w, nofault_trace.final_w)
        assert trace.final.modelled_time > nofault_trace.final.modelled_time
        assert trace.final.modelled_time >= nofault_trace.final.modelled_time + 0.9 * downtime
        kinds = [e["kind"] for e in trace.info["faults"]["events"]]
        assert kinds == ["crash", "restart"]

    def test_stall_times_identical_across_engines(self, dataset, nofault_trace):
        crash = _crash_time(nofault_trace)
        traces = {}
        for mode in ("lockstep", "event"):
            cluster = SimulatedCluster(
                dataset, 4,
                faults=FailureModel(crash_at_time={1: crash}, restart_after=crash),
                engine=mode, random_state=0,
            )
            traces[mode] = NewtonADMM(
                lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
            ).fit(cluster)
        assert np.array_equal(traces["lockstep"].final_w, traces["event"].final_w)
        assert (
            traces["lockstep"].final.modelled_time
            == traces["event"].final.modelled_time
        )

    def test_stall_without_restart_raises(self, dataset, nofault_trace):
        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(crash_at_time={1: _crash_time(nofault_trace)}),
            random_state=0,
        )
        with pytest.raises(WorkerLostError, match="no scheduled restart"):
            NewtonADMM(
                lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
            ).fit(cluster)

    def test_giant_raises_too(self, dataset):
        probe = GIANT(lam=1e-3, max_epochs=4, record_accuracy=False).fit(
            SimulatedCluster(dataset, 4, random_state=0)
        )
        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(crash_at_time={0: 0.5 * probe.final.modelled_time}),
            random_state=0,
        )
        with pytest.raises(WorkerLostError):
            GIANT(lam=1e-3, max_epochs=4, record_accuracy=False).fit(cluster)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            NewtonADMM(on_failure="shrug")
        with pytest.raises(ValueError):
            RoundPlan("p", on_failure="shrug")

    def test_stall_charges_stall_category(self, dataset, nofault_trace):
        crash = _crash_time(nofault_trace)
        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(crash_at_time={1: crash}, restart_after=crash),
            random_state=0,
        )
        NewtonADMM(
            lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
        ).fit(cluster)
        assert cluster.clock.category("stall") > 0.0


# ---------------------------------------------------------------------------
# Degraded membership
# ---------------------------------------------------------------------------
class TestDegradePolicy:
    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_degraded_plan_runs_on_survivors_and_reweights(self, mode, dataset):
        cluster = SimulatedCluster(
            dataset, 4, faults=FailureModel(crash_at_time={3: 0.0}),
            engine=mode, random_state=0,
        )
        plan = RoundPlan("degraded-mean", on_failure="degrade")
        plan.local("vals", lambda worker, ctx: float(worker.worker_id + 1))
        plan.reduce_scalar("total", lambda ctx: ctx["vals"])
        plan.master(
            lambda ctx: ctx["total"] / len(ctx["alive_workers"]), name="mean"
        )
        plan.returns("mean")
        execution = execute_plan(cluster, plan)
        # Worker 3 (value 4.0) is down from t=0: mean over survivors 1, 2, 3.
        assert execution.result == pytest.approx(2.0)
        assert cluster.last_round_survivors == [0, 1, 2]

    def test_degraded_collective_membership_costs_less(self, dataset):
        def bytes_with(faults):
            cluster = SimulatedCluster(dataset, 4, faults=faults, random_state=0)
            plan = RoundPlan("g", on_failure="degrade")
            plan.local("vals", lambda worker, ctx: np.ones(8))
            plan.allreduce("sum", lambda ctx: ctx["vals"])
            plan.returns("sum")
            execute_plan(cluster, plan)
            return cluster.comm.log.bytes_transferred

        assert bytes_with(FailureModel(crash_at_time={3: 0.0})) < bytes_with(None)

    def test_per_collective_degrade_override_in_strict_plan(self, dataset):
        # The documented combo: a plan that stalls its compute rounds but
        # degrades a diagnostic collective.  The payload builds one buffer
        # per worker; the executor slices it to the surviving membership.
        from repro.distributed.schedule import Collective

        def charged_value(worker, ctx):
            # Consume FLOPs so the local round has nonzero modelled time.
            worker.objective.value(np.zeros(worker.dim))
            return float(worker.worker_id + 1)

        # Find the modelled time at which the local round ends, so the crash
        # lands between the local step and the collective.
        base = SimulatedCluster(dataset, 4, random_state=0)
        base_plan = RoundPlan("timing-probe")
        base_plan.local("vals", charged_value)
        execute_plan(base, base_plan)
        after_local = base.clock.time
        assert after_local > 0.0

        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(crash_at_time={3: after_local}),
            engine="event", random_state=0,
        )
        plan = RoundPlan("stall-plan-degrade-gather", on_failure="stall")
        plan.local("vals", charged_value)
        plan.add(
            Collective(
                "total", "reduce_scalar", lambda ctx: ctx["vals"],
                on_failure="degrade",
            )
        )
        plan.returns("total")
        execution = execute_plan(cluster, plan)
        # Worker 3's buffer (4.0) is sliced out of the degraded collective.
        assert execution.result == pytest.approx(1.0 + 2.0 + 3.0)

    def test_degrade_drops_worker_down_at_the_collective_instant(self, dataset):
        # A worker that crashes after finishing its compute but before the
        # barrier is dropped from the collective: its contribution is in
        # flight when it dies, and its frozen timeline is left untouched.
        def charged_ones(worker, ctx):
            worker.objective.value(np.zeros(worker.dim))
            return np.ones(4)

        base = SimulatedCluster(dataset, 4, random_state=0)
        base_plan = RoundPlan("timing-probe")
        base_plan.local("vals", charged_ones)
        execute_plan(base, base_plan)
        after_local = base.clock.time
        assert after_local > 0.0

        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(crash_at_time={1: after_local}),
            engine="event", random_state=0,
        )
        plan = RoundPlan("degrade", on_failure="degrade")
        plan.local("vals", charged_ones)
        plan.allreduce("sum", lambda ctx: ctx["vals"])
        plan.returns("sum")
        execution = execute_plan(cluster, plan)
        assert np.array_equal(execution.result, 3.0 * np.ones(4))
        # The dead worker's timeline froze at the crash: no comm segment from
        # the collective landed on it.
        tl = cluster.engine.timeline(1)
        assert all(seg.kind != "comm" for seg in tl.segments)

    def test_crash_at_round_not_dropped_when_worker_sits_out(self):
        # Arming uses >= so a worker absent from the configured round crashes
        # at its next participating round instead of never.
        injector = FailureModel(crash_at_round={1: 2}).start(4)
        injector.begin_round([0, 1], 0.0)   # round 1: participates, no crash
        injector.begin_round([0], 1.0)      # round 2: worker 1 sits out
        injector.begin_round([0, 1], 2.0)   # round 3: armed now, at t=2.0
        assert injector.is_down(1, 2.0)
        assert injector.first_crash_in(1, 0.0, 10.0) == 2.0

    def test_all_workers_lost_raises_even_degraded(self, dataset):
        cluster = SimulatedCluster(
            dataset, 2,
            faults=FailureModel(crash_at_time={0: 0.0, 1: 0.0}),
            random_state=0,
        )
        plan = RoundPlan("doomed", on_failure="degrade")
        plan.local("vals", lambda worker, ctx: 1.0)
        with pytest.raises(WorkerLostError):
            execute_plan(cluster, plan)


# ---------------------------------------------------------------------------
# Quorum ride-through (the acceptance criterion, both engines)
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestQuorumRidesThrough:
    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_async_completes_and_reaches_target_while_sync_raises(
        self, mode, dataset, nofault_trace
    ):
        crash = _crash_time(nofault_trace)
        downtime = 0.5 * nofault_trace.final.modelled_time
        target = nofault_trace.final.objective

        def fault_model():
            return FailureModel(crash_at_time={1: crash}, restart_after=downtime)

        # Strict sync under the identical schedule: the barrier cannot form.
        with pytest.raises(WorkerLostError):
            NewtonADMM(lam=1e-3, max_epochs=6, record_accuracy=False).fit(
                SimulatedCluster(dataset, 4, faults=fault_model(),
                                 engine=mode, random_state=0)
            )

        # Quorum async on the same schedule rides through to the target.
        asyn = AsyncNewtonADMM(
            lam=1e-3, max_epochs=30, quorum=3, max_staleness=10,
            record_accuracy=False,
        ).fit(
            SimulatedCluster(dataset, 4, faults=fault_model(),
                             engine=mode, random_state=0)
        )
        assert asyn.final.objective <= target
        assert math.isfinite(time_to_objective(asyn, target))
        kinds = [e["kind"] for e in asyn.info["faults"]["events"]]
        assert kinds.count("crash") == 1 and kinds.count("restart") == 1

    def test_async_rides_through_permanent_loss(self, dataset, nofault_trace):
        trace = AsyncNewtonADMM(
            lam=1e-3, max_epochs=24, quorum=3, record_accuracy=False
        ).fit(
            SimulatedCluster(
                dataset, 4,
                faults=FailureModel(crash_at_time={1: _crash_time(nofault_trace)}),
                random_state=0,
            )
        )
        # Completes on the survivors and keeps optimizing their objective.
        assert np.isfinite(trace.final.objective)
        assert trace.final.objective < trace.records[0].objective
        assert trace.final.extras["alive_workers"] == 3.0

    def test_async_all_lost_raises(self, dataset, nofault_trace):
        crash = _crash_time(nofault_trace)
        with pytest.raises(WorkerLostError, match="no surviving workers"):
            AsyncNewtonADMM(lam=1e-3, max_epochs=24, record_accuracy=False).fit(
                SimulatedCluster(
                    dataset, 4,
                    faults=FailureModel(
                        crash_at_time={0: crash, 1: crash, 2: crash, 3: crash}
                    ),
                    random_state=0,
                )
            )

    def test_async_sgd_rides_through_crash_and_restart(self, dataset):
        probe = AsynchronousSGD(lam=1e-3, max_epochs=2, random_state=0).fit(
            SimulatedCluster(dataset, 4, random_state=0)
        )
        total = probe.final.modelled_time
        trace = AsynchronousSGD(lam=1e-3, max_epochs=2, random_state=0).fit(
            SimulatedCluster(
                dataset, 4,
                faults=FailureModel(
                    crash_at_time={0: 0.5 * total}, restart_after=0.2 * total
                ),
                random_state=0,
            )
        )
        assert np.isfinite(trace.final.objective)
        kinds = [e["kind"] for e in trace.info["faults"]["events"]]
        assert kinds == ["crash", "restart"]
        assert trace.final.extras["alive_workers"] == 4.0


# ---------------------------------------------------------------------------
# Gantt rendering with failure markers
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestGanttFaultMarkers:
    @pytest.fixture(scope="class")
    def stalled_trace(self, dataset):
        probe = NewtonADMM(lam=1e-3, max_epochs=6, record_accuracy=False).fit(
            SimulatedCluster(dataset, 4, random_state=0)
        )
        crash = 0.35 * probe.final.modelled_time
        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(crash_at_time={1: crash},
                                restart_after=probe.final.modelled_time),
            engine="event", random_state=0,
        )
        return NewtonADMM(
            lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
        ).fit(cluster)

    def test_markers_and_downtime_fill(self, stalled_trace):
        art = plot_gantt(stalled_trace, width=60)
        assert "X" in art      # crash marker
        assert "^" in art      # restart marker
        assert "x" in art      # downtime fill
        assert "x down" in art  # legend mentions the new glyph

    def test_markers_on_the_crashed_workers_row(self, stalled_trace):
        art = plot_gantt(stalled_trace, width=60)
        rows = {
            line.split("|")[0].strip(): line
            for line in art.splitlines()
            if line.startswith("w")
        }
        assert "X" in rows["w1"] and "^" in rows["w1"]
        assert all("X" not in rows[f"w{i}"] for i in (0, 2, 3))

    def test_epoch_slices_keep_markers_in_their_window(self, stalled_trace):
        # Fault events are stamped on the global clock; the sliced view
        # remaps the ones inside the epoch window onto the sliced rows, so
        # the crash appears in exactly the epoch containing it (and in no
        # other epoch's view).
        boundaries = stalled_trace.info["timeline_epochs"]["boundaries"]
        crash = next(
            e for e in stalled_trace.info["faults"]["events"]
            if e["kind"] == "crash"
        )
        wid, t = int(crash["worker_id"]), float(crash["time"])
        marked = []
        for epoch in range(1, len(boundaries) + 1):
            art = plot_gantt(stalled_trace, epoch=epoch, width=60)
            row = next(
                line for line in art.splitlines()
                if line.startswith(f"w{wid}")
            )
            if "X" in row:
                marked.append(epoch)
        assert marked, "crash marker missing from every epoch slice"
        for epoch in marked:
            lo = 0.0 if epoch == 1 else boundaries[epoch - 2][wid]
            hi = boundaries[epoch - 1][wid]
            assert lo <= t <= hi

    def test_permanently_lost_worker_rendered_down_to_the_end(self, dataset):
        probe = AsyncNewtonADMM(lam=1e-3, max_epochs=6, record_accuracy=False).fit(
            SimulatedCluster(dataset, 4, random_state=0)
        )
        trace = AsyncNewtonADMM(
            lam=1e-3, max_epochs=12, quorum=3, record_accuracy=False
        ).fit(
            SimulatedCluster(
                dataset, 4,
                faults=FailureModel(
                    crash_at_time={2: 0.3 * probe.final.modelled_time}
                ),
                random_state=0,
            )
        )
        art = plot_gantt(trace, width=60)
        row = next(line for line in art.splitlines() if line.startswith("w2"))
        # Downtime extends to the end of the run.
        assert row.rstrip("|").endswith("x")


# ---------------------------------------------------------------------------
# Harness plumbing
# ---------------------------------------------------------------------------
class TestHarnessFaults:
    def test_cluster_config_faults_spec_builds_model(self, dataset):
        from repro.harness.config import ClusterConfig
        from repro.harness.runner import build_cluster

        config = ClusterConfig(
            dataset="mnist_like", n_workers=2, n_train=300, n_test=60,
            faults="0@1.5,restart=1.0",
        )
        cluster, _ = build_cluster(config)
        assert cluster.faults is not None
        assert cluster.faults.crash_at_time == {0: 1.5}

    def test_session_default_faults(self):
        from repro.harness.config import default_faults, set_default_faults

        assert default_faults() is None
        try:
            set_default_faults("0@1.0")
            assert default_faults() == "0@1.0"
            with pytest.raises(ValueError):
                set_default_faults("garbage")
        finally:
            set_default_faults(None)

    def test_cli_rejects_bad_spec(self):
        from repro.harness.cli import main

        lines = []
        code = main(
            ["run", "table1", "--faults", "nonsense"], print_fn=lines.append
        )
        assert code == 2
        assert any("error" in line for line in lines)

    def test_cluster_describe_serializes_faults(self, dataset):
        import json

        cluster = SimulatedCluster(
            dataset, 2, faults=FailureModel(crash_at_time={0: 1.0}),
            random_state=0,
        )
        json.dumps(cluster.describe())

    def test_reset_accounting_resets_fault_schedule(self, dataset, nofault_trace):
        crash = _crash_time(nofault_trace)
        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(crash_at_time={1: crash}, restart_after=crash),
            random_state=0,
        )
        solver = NewtonADMM(
            lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
        )
        first = solver.fit(cluster)
        second = solver.fit(cluster)  # fit() resets accounting + fault state
        assert np.array_equal(first.final_w, second.final_w)
        assert first.final.modelled_time == second.final.modelled_time
        assert (
            [e["kind"] for e in first.info["faults"]["events"]]
            == [e["kind"] for e in second.info["faults"]["events"]]
        )
