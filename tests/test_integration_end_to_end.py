"""End-to-end and cross-cutting integration tests.

These pin down the paper-level behaviours the reproduction is built around:
communication-round structure, epoch-time scaling shape, the Newton-ADMM vs.
first/second-order comparisons, and the public package API.
"""

import numpy as np
import pytest

import repro
from repro import (
    GIANT,
    NewtonADMM,
    SimulatedCluster,
    SynchronousSGD,
    load_dataset,
)
from repro.distributed.network import ethernet_10g, wan_slow
from repro.harness.runner import reference_optimum
from repro.metrics.traces import average_epoch_time, time_to_relative_objective


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_runs(self):
        train, test = load_dataset("mnist_like", n_train=400, n_test=100)
        cluster = SimulatedCluster(train, n_workers=2, random_state=0)
        trace = NewtonADMM(lam=1e-5, max_epochs=5).fit(cluster, test=test)
        assert np.isfinite(trace.final.objective)
        assert 0.0 <= trace.final.test_accuracy <= 1.0


@pytest.fixture(scope="module")
def mnist_small():
    return load_dataset("mnist_like", n_train=1200, n_test=300, random_state=0)


@pytest.mark.slow
class TestCommunicationStructure:
    """Remark 1 and the GIANT comparison: rounds per iteration."""

    def test_rounds_admm_vs_giant_vs_sgd(self, mnist_small):
        train, test = mnist_small
        cluster = SimulatedCluster(train, 4, random_state=0)
        epochs = 4
        admm = NewtonADMM(lam=1e-5, max_epochs=epochs).fit(cluster)
        giant = GIANT(lam=1e-5, max_epochs=epochs).fit(cluster)
        sgd = SynchronousSGD(
            lam=1e-5, max_epochs=epochs, step_size=0.1, batch_size=64, random_state=0
        ).fit(cluster)
        assert admm.final.comm_rounds == epochs
        assert giant.final.comm_rounds == 3 * epochs
        assert sgd.final.comm_rounds > giant.final.comm_rounds

    def test_slow_network_hurts_giant_more_than_admm(self, mnist_small):
        """The paper: extra rounds matter more on slower interconnects."""
        train, _ = mnist_small
        epochs = 4

        def comm_time(network, solver_cls, **kwargs):
            cluster = SimulatedCluster(train, 4, network=network, random_state=0)
            trace = solver_cls(lam=1e-5, max_epochs=epochs, **kwargs).fit(cluster)
            return trace.final.comm_time

        admm_eth, giant_eth = (
            comm_time(ethernet_10g(), NewtonADMM),
            comm_time(ethernet_10g(), GIANT),
        )
        admm_wan, giant_wan = (
            comm_time(wan_slow(), NewtonADMM),
            comm_time(wan_slow(), GIANT),
        )
        assert giant_eth > admm_eth
        assert giant_wan > admm_wan
        # The absolute gap grows as the network slows down.
        assert (giant_wan - admm_wan) > (giant_eth - admm_eth)


@pytest.mark.slow
class TestScalingShape:
    """Figure 2's shape: strong scaling reduces epoch time, weak keeps it flat."""

    def test_strong_scaling_reduces_epoch_time(self):
        # Use the MNIST-like workload: it is compute-heavy enough that the
        # modelled epoch time is dominated by FLOPs rather than fixed
        # per-round overheads, which is the regime the paper's Figure 2 shows.
        train, _ = load_dataset("mnist_like", n_train=3000, n_test=200, random_state=0)
        times = {}
        for n_workers in (1, 4):
            cluster = SimulatedCluster(train, n_workers, random_state=0)
            trace = NewtonADMM(lam=1e-5, max_epochs=3, record_accuracy=False).fit(cluster)
            times[n_workers] = average_epoch_time(trace)
        assert times[4] < times[1]
        # Ideal halving would give 4x; allow generous slack for overheads.
        assert times[1] / times[4] > 1.8

    def test_weak_scaling_epoch_time_roughly_constant(self):
        per_worker = 750
        times = {}
        for n_workers in (1, 4):
            train, _ = load_dataset(
                "mnist_like", n_train=per_worker * n_workers, n_test=200, random_state=0
            )
            cluster = SimulatedCluster(train, n_workers, random_state=0)
            trace = NewtonADMM(lam=1e-5, max_epochs=3, record_accuracy=False).fit(cluster)
            times[n_workers] = average_epoch_time(trace)
        ratio = times[4] / times[1]
        assert 0.5 < ratio < 2.0


@pytest.mark.slow
class TestHeadlineComparisons:
    def test_admm_beats_sgd_in_time_to_objective(self, mnist_small):
        """Figure 4's shape: Newton-ADMM reaches SGD's final objective sooner."""
        train, test = mnist_small
        cluster = SimulatedCluster(train, 4, random_state=0)
        sgd = SynchronousSGD(
            lam=1e-5, max_epochs=10, step_size=0.1, batch_size=128, random_state=0
        ).fit(cluster, test=test)
        admm = NewtonADMM(lam=1e-5, max_epochs=15).fit(cluster, test=test)
        from repro.metrics.traces import time_to_objective

        t = time_to_objective(admm, sgd.final.objective)
        assert t < sgd.total_time()
        assert admm.final.test_accuracy >= sgd.final.test_accuracy - 0.05

    def test_admm_competitive_with_giant_time_to_theta(self, mnist_small):
        """Figure 3's shape: speed-up ratio of ADMM over GIANT is >= ~1."""
        train, _ = mnist_small
        lam = 1e-4
        _, f_star = reference_optimum(train, lam, max_iterations=60, cg_max_iter=80)
        cluster = SimulatedCluster(train, 4, random_state=0)
        admm = NewtonADMM(lam=lam, max_epochs=40).fit(cluster)
        giant = GIANT(lam=lam, max_epochs=40).fit(cluster)
        t_admm = time_to_relative_objective(admm, f_star, theta=0.05)
        t_giant = time_to_relative_objective(giant, f_star, theta=0.05)
        assert np.isfinite(t_admm)
        # Newton-ADMM should not be dramatically slower; typically faster.
        if np.isfinite(t_giant):
            assert t_admm <= 2.0 * t_giant

    def test_both_second_order_methods_reach_same_quality(self, mnist_small):
        train, test = mnist_small
        cluster = SimulatedCluster(train, 4, random_state=0)
        admm = NewtonADMM(lam=1e-4, max_epochs=30).fit(cluster, test=test)
        giant = GIANT(lam=1e-4, max_epochs=30).fit(cluster, test=test)
        assert abs(admm.final.test_accuracy - giant.final.test_accuracy) < 0.1


class TestDeterminismAcrossExecutors:
    def test_serial_and_threaded_clusters_agree(self, mnist_small):
        train, _ = mnist_small
        serial = SimulatedCluster(train, 4, executor="serial", random_state=0)
        threads = SimulatedCluster(train, 4, executor="threads", random_state=0)
        a = NewtonADMM(lam=1e-4, max_epochs=5).fit(serial)
        b = NewtonADMM(lam=1e-4, max_epochs=5).fit(threads)
        np.testing.assert_allclose(a.objectives(), b.objectives(), rtol=1e-10)
        np.testing.assert_allclose(a.final_w, b.final_w, rtol=1e-10)


@pytest.mark.slow
class TestSparseHighDimensionalPath:
    def test_e18_like_hessian_free_run(self):
        train, test = load_dataset("e18_like", n_train=400, n_test=100, random_state=0)
        cluster = SimulatedCluster(train, 4, random_state=0)
        trace = NewtonADMM(lam=1e-3, max_epochs=8).fit(cluster, test=test)
        assert np.isfinite(trace.final.objective)
        assert trace.final.objective < np.log(train.n_classes)
        assert trace.final.test_accuracy > 1.0 / train.n_classes
