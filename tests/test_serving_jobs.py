"""Training-job API: validation, progress streaming, cancellation, publish."""

import numpy as np
import pytest

from repro.serving.errors import JobError, JobNotFoundError
from repro.serving.jobs.manager import TERMINAL_STATES, TrainingJobManager
from repro.serving.registry import ModelRegistry

TINY = {
    "solver": {"name": "newton_admm", "max_epochs": 3},
    "cluster": {"dataset": "mnist_like", "n_workers": 2, "n_train": 240, "n_test": 60},
}


def _payload(**overrides):
    payload = {
        "solver": dict(TINY["solver"]),
        "cluster": dict(TINY["cluster"]),
    }
    payload.update(overrides)
    return payload


class TestValidation:
    def test_missing_solver_name(self):
        with pytest.raises(JobError, match="solver.name is required"):
            TrainingJobManager().submit({"cluster": {"dataset": "mnist_like"}})

    def test_unknown_solver(self):
        payload = _payload()
        payload["solver"]["name"] = "adamw"
        with pytest.raises(JobError, match="unknown solver"):
            TrainingJobManager().submit(payload)

    def test_missing_dataset(self):
        payload = _payload()
        del payload["cluster"]["dataset"]
        with pytest.raises(JobError, match="cluster.dataset is required"):
            TrainingJobManager().submit(payload)

    def test_unknown_cluster_option(self):
        payload = _payload()
        payload["cluster"]["gpus"] = 8
        with pytest.raises(JobError, match="unknown cluster option"):
            TrainingJobManager().submit(payload)

    def test_publish_without_registry(self):
        with pytest.raises(JobError, match="requires a model registry"):
            TrainingJobManager().submit(_payload(publish_as="m"))

    def test_unknown_job_id(self):
        manager = TrainingJobManager()
        with pytest.raises(JobNotFoundError):
            manager.get("job-9999")
        with pytest.raises(JobNotFoundError):
            manager.cancel("job-9999")


class TestLifecycle:
    def test_tiny_job_succeeds_with_streamed_records(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        manager = TrainingJobManager(registry)
        snapshot = manager.submit(_payload(publish_as="served"))
        assert snapshot["id"] == "job-0001"
        assert snapshot["status"] in ("queued", "running")
        done = manager.wait(snapshot["id"], timeout=120.0)
        assert done["status"] == "succeeded"
        assert done["epochs_done"] == 3
        epochs = [r["epoch"] for r in done["records"]]
        assert epochs == [1, 2, 3]
        assert done["result"]["final_objective"] is not None
        assert done["result"]["method"] == "newton_admm"
        # the finished job auto-published its final iterate
        assert done["published"] == {"name": "served", "version": 1}
        model = registry.load("served")
        assert model.metadata["job_id"] == "job-0001"
        assert model.n_classes >= 2
        assert np.all(np.isfinite(model.weights))
        # incremental polling: after the last epoch there is nothing new
        assert manager.get(snapshot["id"], after=3)["records"] == []
        assert len(manager.get(snapshot["id"], after=1)["records"]) == 2

    def test_failed_job_reports_structured_error(self):
        manager = TrainingJobManager()
        payload = _payload()
        payload["cluster"]["dataset"] = "no_such_dataset"
        snapshot = manager.submit(payload)
        done = manager.wait(snapshot["id"], timeout=60.0)
        assert done["status"] == "failed"
        assert done["error"]["type"]
        assert done["error"]["detail"]

    def test_cancel_stops_midway_with_partial_records(self):
        manager = TrainingJobManager()
        payload = _payload()
        payload["solver"]["max_epochs"] = 500  # would run for a long while
        snapshot = manager.submit(payload)
        job_id = snapshot["id"]
        # wait for the first record so we know the solver is in its epoch loop
        deadline_records = 0
        for _ in range(2000):
            deadline_records = manager.get(job_id)["epochs_done"]
            if deadline_records >= 1:
                break
            import time

            time.sleep(0.01)
        assert deadline_records >= 1, "job never produced a record"
        manager.cancel(job_id)
        done = manager.wait(job_id, timeout=120.0)
        assert done["status"] == "cancelled"
        assert 1 <= done["epochs_done"] < 500
        assert done["cancel_requested"] is True
        assert done["published"] is None

    def test_cancel_terminal_job_is_a_noop(self):
        manager = TrainingJobManager()
        snapshot = manager.submit(_payload())
        done = manager.wait(snapshot["id"], timeout=120.0)
        assert done["status"] in TERMINAL_STATES
        again = manager.cancel(snapshot["id"])
        assert again["status"] == done["status"]
        assert again["cancel_requested"] is False

    def test_list_jobs_omits_records(self):
        manager = TrainingJobManager()
        manager.wait(manager.submit(_payload())["id"], timeout=120.0)
        listed = manager.list_jobs()
        assert len(listed) == 1
        assert "records" not in listed[0]
        assert listed[0]["epochs_done"] == 3

    @pytest.mark.process_engine
    def test_process_engine_job(self, tmp_path):
        """Jobs accept engine='process' (real worker OS processes); records
        arrive when the fit returns rather than streaming per epoch."""
        registry = ModelRegistry(tmp_path / "registry")
        manager = TrainingJobManager(registry)
        payload = _payload(publish_as="proc")
        payload["solver"]["max_epochs"] = 2
        payload["cluster"]["engine"] = "process"
        snapshot = manager.submit(payload)
        done = manager.wait(snapshot["id"], timeout=300.0)
        assert done["status"] == "succeeded"
        assert done["epochs_done"] == 2
        assert done["published"] == {"name": "proc", "version": 1}
