"""Dtype preservation and mixed-dtype validation in the linalg layer.

The CG/HVP hot path must never silently round-trip through ``float64``:
float32 problems stay float32 end-to-end, and pairing an operator with a
vector of a different floating dtype is a loud error instead of a silent
promotion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.cg import conjugate_gradient
from repro.linalg.operators import (
    DiagonalOperator,
    HessianOperator,
    LinearOperator,
    MatrixOperator,
    ShiftedOperator,
)
from repro.linalg.preconditioners import RegularizerPreconditioner
from repro.objectives.least_squares import LeastSquares


def _spd_matrix(dim, dtype, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((dim, dim))
    A = A @ A.T + dim * np.eye(dim)
    return A.astype(dtype)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestCGDtypePreservation:
    def test_solution_keeps_input_dtype(self, dtype):
        A = _spd_matrix(8, dtype)
        b = np.arange(1.0, 9.0, dtype=dtype)
        result = conjugate_gradient(MatrixOperator(A), b, tol=1e-6, max_iter=50)
        assert result.x.dtype == dtype
        assert result.converged

    def test_x0_keeps_input_dtype(self, dtype):
        A = _spd_matrix(6, dtype)
        b = np.ones(6, dtype=dtype)
        x0 = np.full(6, 0.5, dtype=dtype)
        result = conjugate_gradient(MatrixOperator(A), b, x0=x0, tol=1e-6, max_iter=50)
        assert result.x.dtype == dtype

    def test_zero_rhs_keeps_dtype(self, dtype):
        A = _spd_matrix(4, dtype)
        result = conjugate_gradient(MatrixOperator(A), np.zeros(4, dtype=dtype))
        assert result.x.dtype == dtype
        assert result.converged and result.n_iterations == 0

    def test_matvec_output_keeps_dtype(self, dtype):
        op = MatrixOperator(_spd_matrix(5, dtype))
        out = op.matvec(np.ones(5, dtype=dtype))
        assert out.dtype == dtype

    def test_diagonal_operator_keeps_dtype(self, dtype):
        op = DiagonalOperator(np.array([1.0, 2.0, 4.0], dtype=dtype))
        out = op.matvec(np.ones(3, dtype=dtype))
        assert out.dtype == dtype

    def test_shifted_operator_keeps_dtype(self, dtype):
        base = MatrixOperator(_spd_matrix(4, dtype))
        out = ShiftedOperator(base, 0.5).matvec(np.ones(4, dtype=dtype))
        assert out.dtype == dtype

    def test_regularizer_preconditioner_keeps_dtype(self, dtype):
        prec = RegularizerPreconditioner(4, 2.0)
        out = prec.matvec(np.ones(4, dtype=dtype))
        assert out.dtype == dtype


class TestMixedDtypeValidation:
    def test_operator_float64_vector_float32_raises(self):
        op = MatrixOperator(_spd_matrix(5, np.float64))
        with pytest.raises(TypeError, match="mixed dtypes"):
            op.matvec(np.ones(5, dtype=np.float32))

    def test_operator_float32_vector_float64_raises(self):
        op = MatrixOperator(_spd_matrix(5, np.float32))
        with pytest.raises(TypeError, match="mixed dtypes"):
            op.matvec(np.ones(5, dtype=np.float64))

    def test_cg_mixed_operator_rhs_raises(self):
        op = MatrixOperator(_spd_matrix(5, np.float32))
        with pytest.raises(TypeError, match="mixed dtypes"):
            conjugate_gradient(op, np.ones(5, dtype=np.float64))

    def test_cg_mixed_x0_raises(self):
        op = MatrixOperator(_spd_matrix(5, np.float64))
        with pytest.raises(TypeError, match="mixed dtypes"):
            conjugate_gradient(
                op, np.ones(5), x0=np.zeros(5, dtype=np.float32)
            )

    def test_integer_vectors_still_promote(self):
        # Integers are not a precision statement; they promote as before.
        op = MatrixOperator(_spd_matrix(4, np.float64))
        out = op.matvec(np.ones(4, dtype=np.int64))
        assert out.dtype == np.float64

    def test_lists_still_accepted(self):
        op = DiagonalOperator(np.ones(3))
        out = op.matvec([1.0, 2.0, 3.0])
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])


class TestHessianOperatorDtype:
    def test_hessian_operator_on_float64_objective(self):
        rng = np.random.default_rng(0)
        obj = LeastSquares(rng.standard_normal((20, 4)), rng.standard_normal(20))
        w = np.zeros(obj.dim)
        op = HessianOperator(obj, w)
        out = op.matvec(np.ones(obj.dim))
        assert out.dtype == np.float64

    def test_to_dense_respects_operator_dtype(self):
        op = MatrixOperator(_spd_matrix(3, np.float32))
        dense = op.to_dense()
        np.testing.assert_allclose(dense, op.A, rtol=1e-6)

    def test_untyped_operator_accepts_any_float(self):
        op = LinearOperator(3, lambda v: 2.0 * v)
        assert op.matvec(np.ones(3, dtype=np.float32)).dtype == np.float32
        assert op.matvec(np.ones(3, dtype=np.float64)).dtype == np.float64
