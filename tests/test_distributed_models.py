"""Tests for the device and network cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.device import DeviceModel, cpu_xeon_gold, tesla_p100
from repro.distributed.network import (
    NetworkModel,
    ethernet_10g,
    infiniband_100g,
    wan_slow,
)


class TestDeviceModel:
    def test_zero_work_zero_time(self):
        assert tesla_p100().compute_time(0.0) == 0.0

    def test_time_increases_with_flops(self):
        dev = tesla_p100()
        assert dev.compute_time(1e12) > dev.compute_time(1e9) > 0.0

    def test_roofline_memory_bound(self):
        dev = DeviceModel("d", peak_flops=1e12, memory_bandwidth=1e9, efficiency=1.0,
                          kernel_overhead=0.0)
        # 1 GFLOP but 10 GB moved: memory dominates.
        t = dev.compute_time(1e9, bytes_moved=1e10)
        assert t == pytest.approx(10.0)

    def test_overhead_charged(self):
        dev = DeviceModel("d", peak_flops=1e15, memory_bandwidth=1e15,
                          efficiency=1.0, kernel_overhead=1e-3)
        assert dev.compute_time(1.0) >= 1e-3

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            tesla_p100().compute_time(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DeviceModel("d", peak_flops=0.0, memory_bandwidth=1.0)

    def test_p100_faster_than_cpu(self):
        flops = 1e12
        assert tesla_p100().compute_time(flops) < cpu_xeon_gold().compute_time(flops)

    def test_sustained_flops(self):
        dev = tesla_p100()
        assert dev.sustained_flops() == pytest.approx(dev.peak_flops * dev.efficiency)

    @settings(max_examples=30, deadline=None)
    @given(flops=st.floats(0, 1e15), extra=st.floats(0, 1e12))
    def test_property_monotone(self, flops, extra):
        dev = tesla_p100()
        assert dev.compute_time(flops + extra) >= dev.compute_time(flops)


class TestNetworkModel:
    def test_point_to_point(self):
        net = NetworkModel("n", latency=1e-3, bandwidth=1e9)
        assert net.point_to_point(1e9) == pytest.approx(1e-3 + 1.0)

    def test_single_worker_collectives_free(self):
        net = infiniband_100g()
        assert net.gather(1, 1e6) == 0.0
        assert net.scatter(1, 1e6) == 0.0
        assert net.broadcast(1, 1e6) == 0.0
        assert net.allgather(1, 1e6) == 0.0

    def test_collectives_grow_logarithmically(self):
        net = NetworkModel("n", latency=1e-3, bandwidth=1e12)
        # latency-dominated: broadcast cost ~ ceil(log2(N)) * latency
        t2 = net.broadcast(2, 8.0)
        t8 = net.broadcast(8, 8.0)
        t64 = net.broadcast(64, 8.0)
        assert t8 == pytest.approx(3 * t2, rel=1e-6)
        assert t64 == pytest.approx(6 * t2, rel=1e-6)

    def test_allreduce_costs_reduce_plus_broadcast(self):
        net = ethernet_10g()
        assert net.allreduce(8, 1e6) == pytest.approx(
            net.reduce(8, 1e6) + net.broadcast(8, 1e6)
        )

    def test_gather_monotone_in_size(self):
        net = infiniband_100g()
        assert net.gather(8, 1e7) > net.gather(8, 1e6)

    def test_allgather_ring(self):
        net = NetworkModel("n", latency=0.0, bandwidth=1e6)
        assert net.allgather(5, 1e6) == pytest.approx(4.0)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            infiniband_100g().gather(0, 8.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            infiniband_100g().point_to_point(-1.0)

    def test_presets_ordering(self):
        # Same collective is cheapest on InfiniBand and most expensive on WAN.
        nbytes = 1e6
        ib = infiniband_100g().allreduce(8, nbytes)
        eth = ethernet_10g().allreduce(8, nbytes)
        wan = wan_slow().allreduce(8, nbytes)
        assert ib < eth < wan

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 64), nbytes=st.floats(0, 1e9))
    def test_property_nonnegative(self, n, nbytes):
        net = ethernet_10g()
        assert net.gather(n, nbytes) >= 0.0
        assert net.broadcast(n, nbytes) >= 0.0
        assert net.allreduce(n, nbytes) >= 0.0


class TestCollectiveCostInvariants:
    """Structural invariants of the collective cost model.

    These costs now underpin the partition/degraded-membership accounting
    (a degraded collective bills the reachable membership only), so the
    claims the docstrings make — tree symmetry, reduce+broadcast
    composition, monotonicity, free single-worker degenerate case — are
    pinned here directly rather than assumed.
    """

    _NETS = (infiniband_100g, ethernet_10g, wan_slow)
    _COLLECTIVES = ("gather", "scatter", "broadcast", "reduce", "allreduce",
                    "allgather")

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 128), extra=st.integers(1, 64),
           nbytes=st.floats(1.0, 1e9))
    def test_monotone_in_worker_count(self, n, extra, nbytes):
        net = ethernet_10g()
        for op in self._COLLECTIVES:
            fn = getattr(net, op)
            assert fn(n + extra, nbytes) >= fn(n, nbytes), op

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(2, 128), nbytes=st.floats(0.0, 1e9),
           extra=st.floats(1.0, 1e9))
    def test_monotone_in_bytes(self, n, nbytes, extra):
        net = wan_slow()
        for op in self._COLLECTIVES:
            fn = getattr(net, op)
            assert fn(n, nbytes + extra) >= fn(n, nbytes), op

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 256), nbytes=st.floats(0.0, 1e9))
    def test_scatter_equals_gather_symmetry(self, n, nbytes):
        # The documented claim: under the binomial-tree schedule the scatter
        # is the time-reversed gather, so their modelled costs coincide.
        for make in self._NETS:
            net = make()
            assert net.scatter(n, nbytes) == net.gather(n, nbytes)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 256), nbytes=st.floats(0.0, 1e9))
    def test_allreduce_is_reduce_plus_broadcast(self, n, nbytes):
        for make in self._NETS:
            net = make()
            assert net.allreduce(n, nbytes) == pytest.approx(
                net.reduce(n, nbytes) + net.broadcast(n, nbytes)
            )

    def test_single_worker_degenerate_costs_are_zero(self):
        # A one-worker "cluster" never touches the wire: every collective is
        # free, whatever the interconnect.
        for make in self._NETS:
            net = make()
            for op in self._COLLECTIVES:
                assert getattr(net, op)(1, 1e8) == 0.0, op
