"""Registry lifecycle (S3): publish -> serve -> hot swap -> rollback, plus
structured errors for every flavour of corrupt on-disk state."""

import json
import threading

import numpy as np
import pytest

from repro.metrics.traces import EpochRecord, RunTrace
from repro.serving.errors import ModelFormatError, ModelNotFoundError, RegistryError
from repro.serving.registry import SCHEMA, ModelRegistry


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


def _weights(seed=0, p=6, c=4, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(p * (c - 1)).astype(dtype)


class TestPublishLoad:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_publish_load_bit_exact(self, registry, dtype):
        w = _weights(dtype=dtype)
        registry.publish("m", w, n_classes=4)
        model = registry.load("m")
        assert model.weights.dtype == dtype
        view = np.uint32 if dtype == np.float32 else np.uint64
        assert np.array_equal(model.weights.view(view), w.view(view))
        assert model.n_classes == 4
        assert model.n_features == 6

    def test_versions_increment_and_activate(self, registry):
        first = registry.publish("m", _weights(1), n_classes=4)
        second = registry.publish("m", _weights(2), n_classes=4)
        assert (first.version, second.version) == (1, 2)
        assert registry.versions("m") == [1, 2]
        assert registry.current_version("m") == 2
        assert registry.load("m").version == 2
        assert registry.load("m", version=1).version == 1

    def test_publish_without_activate_keeps_current(self, registry):
        registry.publish("m", _weights(1), n_classes=4)
        registry.publish("m", _weights(2), n_classes=4, activate=False)
        assert registry.versions("m") == [1, 2]
        assert registry.current_version("m") == 1

    def test_matrix_form_publish_matches_flat(self, registry):
        flat = _weights(3)
        matrix = flat.reshape(3, 6).T  # (p, C-1), the scoring layout
        registry.publish("flat", flat, n_classes=4)
        registry.publish("matrix", matrix, n_classes=4)
        a = registry.load("flat")
        b = registry.load("matrix")
        assert np.array_equal(a.weights, b.weights)
        assert np.array_equal(a.weight_matrix(), matrix)

    def test_metadata_round_trips(self, registry):
        registry.publish("m", _weights(), n_classes=4, metadata={"note": "hi"})
        assert registry.load("m").metadata["note"] == "hi"

    @pytest.mark.parametrize("bad", ["", "../escape", "a/b", ".hidden", "-dash"])
    def test_invalid_names_rejected(self, registry, bad):
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.publish(bad, _weights(), n_classes=4)

    def test_shape_mismatches_rejected(self, registry):
        with pytest.raises(RegistryError, match="not divisible"):
            registry.publish("m", np.zeros(7), n_classes=4)
        with pytest.raises(RegistryError, match="inconsistent"):
            registry.publish("m", _weights(), n_classes=4, n_features=5)
        with pytest.raises(RegistryError, match="columns"):
            registry.publish("m", np.zeros((6, 2)), n_classes=4)
        with pytest.raises(RegistryError, match="n_classes"):
            registry.publish("m", np.zeros(6), n_classes=1)

    def test_missing_model_and_version(self, registry):
        with pytest.raises(ModelNotFoundError, match="does not exist"):
            registry.load("ghost")
        registry.publish("m", _weights(), n_classes=4)
        with pytest.raises(ModelNotFoundError, match="no version 9"):
            registry.load("m", version=9)

    def test_never_activated_model(self, registry):
        registry.publish("m", _weights(), n_classes=4, activate=False)
        with pytest.raises(ModelNotFoundError, match="no active version"):
            registry.load("m")


class TestCorruptFiles:
    """Corrupt on-disk state must surface as ModelFormatError, never a raw
    traceback (the API maps it to a structured 409)."""

    def _model_file(self, registry, name="m", version=1):
        return registry.root / name / "versions" / f"{version:06d}" / "model.json"

    def test_invalid_json(self, registry):
        registry.publish("m", _weights(), n_classes=4)
        self._model_file(registry).write_text("{ not json")
        with pytest.raises(ModelFormatError, match="not valid JSON"):
            registry.load("m")

    def test_truncated_weights(self, registry):
        registry.publish("m", _weights(), n_classes=4)
        path = self._model_file(registry)
        payload = json.loads(path.read_text())
        payload["weights"]["data"] = payload["weights"]["data"][:8]
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelFormatError, match="corrupt or truncated"):
            registry.load("m")

    def test_wrong_schema(self, registry):
        registry.publish("m", _weights(), n_classes=4)
        path = self._model_file(registry)
        payload = json.loads(path.read_text())
        payload["schema"] = "something/else"
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelFormatError, match=f"expected '{SCHEMA}'"):
            registry.load("m")

    def test_weight_shape_mismatch(self, registry):
        registry.publish("m", _weights(), n_classes=4)
        path = self._model_file(registry)
        payload = json.loads(path.read_text())
        payload["n_features"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelFormatError, match="does not match"):
            registry.load("m")

    def test_corrupt_current_pointer(self, registry):
        registry.publish("m", _weights(), n_classes=4)
        (registry.root / "m" / "CURRENT").write_text("not-a-number")
        with pytest.raises(ModelFormatError, match="CURRENT pointer"):
            registry.load("m")

    def test_activate_refuses_corrupt_target(self, registry):
        """The CURRENT pointer never swaps to a version that fails to load."""
        registry.publish("m", _weights(1), n_classes=4)
        registry.publish("m", _weights(2), n_classes=4)
        self._model_file(registry, version=2).write_text("garbage")
        with pytest.raises(ModelFormatError):
            registry.activate("m", 2)
        # pointer untouched: version 2 was already active before corruption,
        # but a fresh activate("m", 1) must still succeed
        assert registry.activate("m", 1).version == 1
        assert registry.load("m").version == 1


class TestRollbackAndHistory:
    def test_rollback_returns_to_previous_activation(self, registry):
        registry.publish("m", _weights(1), n_classes=4)
        registry.publish("m", _weights(2), n_classes=4)
        assert registry.current_version("m") == 2
        model = registry.rollback("m")
        assert model.version == 1
        assert registry.current_version("m") == 1
        history = [h["version"] for h in registry.history("m")]
        assert history == [1, 2, 1]

    def test_rollback_without_history_errors(self, registry):
        registry.publish("m", _weights(), n_classes=4)
        with pytest.raises(RegistryError, match="no previous activation"):
            registry.rollback("m")

    def test_describe_and_list(self, registry):
        registry.publish("b", _weights(1), n_classes=4)
        registry.publish("a", _weights(2), n_classes=4)
        listed = registry.list_models()
        assert [m["name"] for m in listed] == ["a", "b"]
        described = registry.describe("b")
        assert described["current"] == 1
        assert described["versions"] == [1]
        with pytest.raises(ModelNotFoundError):
            registry.describe("ghost")


class TestHotSwapUnderReaders:
    def test_concurrent_readers_always_see_whole_models(self, registry):
        """Readers hammering load() during repeated publishes must only ever
        observe complete versions whose weights match what was published.
        Every version N is published filled with the value N, so a loaded
        model is self-validating — a torn read would mix fill values."""
        registry.publish("m", np.full(18, 1.0), n_classes=4)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                model = registry.load("m")
                if not np.all(model.weights == float(model.version)):
                    failures.append(model.version)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for fill in range(2, 12):
            registry.publish("m", np.full(18, float(fill)), n_classes=4)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        assert not failures, f"readers saw torn/unknown versions: {failures}"


class TestPublishTrace:
    def _trace(self, w, n_classes=4):
        trace = RunTrace(method="newton_admm", dataset="mnist_like", n_workers=2)
        trace.records.append(
            EpochRecord(epoch=1, objective=0.4, test_accuracy=0.9)
        )
        trace.final_w = w
        trace.info["cluster"] = {"n_classes": n_classes}
        return trace

    def test_provenance_recorded(self, registry):
        model = registry.publish_trace("m", self._trace(_weights()))
        assert model.metadata["method"] == "newton_admm"
        assert model.metadata["dataset"] == "mnist_like"
        assert model.metadata["final_test_accuracy"] == pytest.approx(0.9)

    def test_trace_without_cluster_info_errors(self, registry):
        trace = self._trace(_weights())
        trace.info.pop("cluster")
        with pytest.raises(RegistryError, match="n_classes"):
            registry.publish_trace("m", trace)

    def test_trace_without_weights_errors(self, registry):
        trace = self._trace(None)
        with pytest.raises(RegistryError, match="no final_w"):
            registry.publish_trace("m", trace)
