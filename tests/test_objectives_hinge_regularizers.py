"""Tests for the squared-hinge losses and the smoothed L1 / elastic-net regularizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objectives.hinge import BinarySquaredHinge, MulticlassSquaredHinge
from repro.objectives.regularizers import (
    ElasticNetRegularizer,
    L2Regularizer,
    SmoothedL1Regularizer,
)
from repro.objectives.base import RegularizedObjective
from repro.solvers.newton_cg import NewtonCG


def finite_difference_gradient(objective, w, eps=1e-6):
    grad = np.zeros_like(w)
    for j in range(w.shape[0]):
        e = np.zeros_like(w)
        e[j] = eps
        grad[j] = (objective.value(w + e) - objective.value(w - e)) / (2 * eps)
    return grad


def binary_data(n=40, p=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, p))
    y = (X @ rng.standard_normal(p) > 0).astype(int)
    return X, y


def multiclass_data(n=50, p=5, C=4, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, p))
    y = rng.integers(0, C, size=n)
    return X, y


class TestBinarySquaredHinge:
    def test_value_nonnegative_and_zero_on_separating_w(self):
        X = np.array([[2.0], [-2.0]])
        y = np.array([1, 0])
        loss = BinarySquaredHinge(X, y, scale="sum")
        # w = 1 gives margins exactly +2 for both samples -> no violation.
        assert loss.value(np.array([1.0])) == pytest.approx(0.0)
        assert loss.value(np.array([0.0])) > 0

    def test_gradient_matches_finite_differences(self):
        X, y = binary_data()
        loss = BinarySquaredHinge(X, y)
        w = np.random.default_rng(1).standard_normal(X.shape[1]) * 0.3
        np.testing.assert_allclose(
            loss.gradient(w), finite_difference_gradient(loss, w), atol=1e-5
        )

    def test_value_and_gradient_consistent(self):
        X, y = binary_data(seed=2)
        loss = BinarySquaredHinge(X, y)
        w = np.random.default_rng(2).standard_normal(X.shape[1])
        v, g = loss.value_and_gradient(w)
        assert v == pytest.approx(loss.value(w))
        np.testing.assert_allclose(g, loss.gradient(w))

    def test_hvp_matches_dense_generalized_hessian(self):
        X, y = binary_data(seed=3)
        loss = BinarySquaredHinge(X, y)
        w = np.random.default_rng(3).standard_normal(X.shape[1]) * 0.1
        H = loss.hessian(w)
        v = np.random.default_rng(4).standard_normal(X.shape[1])
        np.testing.assert_allclose(loss.hvp(w, v), H @ v, atol=1e-8)

    def test_hessian_sqrt_reconstructs_hessian(self):
        X, y = binary_data(seed=5)
        loss = BinarySquaredHinge(X, y)
        w = np.random.default_rng(5).standard_normal(X.shape[1]) * 0.2
        A = loss.hessian_sqrt(w)
        np.testing.assert_allclose(A.T @ A, loss.hessian(w), atol=1e-8)

    def test_newton_cg_trains_a_separable_problem(self):
        rng = np.random.default_rng(6)
        X = np.vstack([rng.normal(2, 1, (30, 3)), rng.normal(-2, 1, (30, 3))])
        y = np.array([1] * 30 + [0] * 30)
        loss = BinarySquaredHinge(X, y)
        objective = RegularizedObjective(loss, L2Regularizer(3, 1e-3))
        result = NewtonCG(max_iterations=50, cg_max_iter=30).minimize(objective)
        accuracy = np.mean(loss.predict(result.w) == y)
        assert accuracy >= 0.95

    def test_minibatch_and_predict_shapes(self):
        X, y = binary_data(seed=7)
        loss = BinarySquaredHinge(X, y)
        batch = loss.minibatch(np.arange(5))
        assert batch.n_samples == 5
        assert loss.predict(np.zeros(X.shape[1])).shape == (X.shape[0],)

    def test_requires_binary_labels(self):
        X, _ = binary_data()
        with pytest.raises(ValueError):
            BinarySquaredHinge(X, np.random.default_rng(0).integers(0, 3, X.shape[0]))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_convexity_along_segments(self, seed):
        X, y = binary_data(seed=seed)
        loss = BinarySquaredHinge(X, y)
        rng = np.random.default_rng(seed + 1)
        a = rng.standard_normal(X.shape[1])
        b = rng.standard_normal(X.shape[1])
        mid = 0.5 * (a + b)
        assert loss.value(mid) <= 0.5 * loss.value(a) + 0.5 * loss.value(b) + 1e-10


class TestMulticlassSquaredHinge:
    def test_dim_is_classes_times_features(self):
        X, y = multiclass_data()
        loss = MulticlassSquaredHinge(X, y, 4)
        assert loss.dim == 4 * X.shape[1]

    def test_gradient_matches_finite_differences(self):
        X, y = multiclass_data(n=30, p=4, C=3, seed=1)
        loss = MulticlassSquaredHinge(X, y, 3)
        w = np.random.default_rng(1).standard_normal(loss.dim) * 0.2
        np.testing.assert_allclose(
            loss.gradient(w), finite_difference_gradient(loss, w), atol=1e-5
        )

    def test_hvp_matches_dense_hessian(self):
        X, y = multiclass_data(n=25, p=3, C=3, seed=2)
        loss = MulticlassSquaredHinge(X, y, 3)
        w = np.random.default_rng(2).standard_normal(loss.dim) * 0.1
        H = loss.hessian(w)
        v = np.random.default_rng(3).standard_normal(loss.dim)
        np.testing.assert_allclose(loss.hvp(w, v), H @ v, atol=1e-8)

    def test_training_improves_accuracy(self):
        rng = np.random.default_rng(4)
        centers = np.array([[3.0, 0.0], [-3.0, 0.0], [0.0, 3.0]])
        X = np.vstack([rng.normal(c, 0.8, (25, 2)) for c in centers])
        y = np.repeat(np.arange(3), 25)
        loss = MulticlassSquaredHinge(X, y, 3)
        objective = RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-3))
        result = NewtonCG(max_iterations=50, cg_max_iter=40).minimize(objective)
        assert np.mean(loss.predict(result.w) == y) >= 0.9

    def test_minibatch_preserves_classes(self):
        X, y = multiclass_data(seed=5)
        loss = MulticlassSquaredHinge(X, y, 4)
        batch = loss.minibatch(np.arange(8))
        assert batch.n_classes == 4
        assert batch.dim == loss.dim

    def test_value_and_gradient_consistent(self):
        X, y = multiclass_data(seed=6)
        loss = MulticlassSquaredHinge(X, y, 4)
        w = np.random.default_rng(6).standard_normal(loss.dim)
        v, g = loss.value_and_gradient(w)
        assert v == pytest.approx(loss.value(w))
        np.testing.assert_allclose(g, loss.gradient(w))

    def test_flops_positive(self):
        X, y = multiclass_data()
        loss = MulticlassSquaredHinge(X, y, 4)
        assert loss.flops_value() > 0
        assert loss.flops_gradient() > loss.flops_value()
        assert loss.flops_hvp() > 0


class TestSmoothedL1Regularizer:
    def test_value_approaches_l1_for_small_mu(self):
        reg = SmoothedL1Regularizer(4, lam=1.0, mu=1e-8)
        w = np.array([1.0, -2.0, 0.5, 0.0])
        assert reg.value(w) == pytest.approx(np.abs(w).sum(), abs=1e-5)

    def test_gradient_matches_finite_differences(self):
        reg = SmoothedL1Regularizer(5, lam=0.7, mu=1e-2)
        w = np.random.default_rng(0).standard_normal(5)
        np.testing.assert_allclose(
            reg.gradient(w), finite_difference_gradient(reg, w), atol=1e-6
        )

    def test_hvp_matches_dense_hessian(self):
        reg = SmoothedL1Regularizer(4, lam=0.3, mu=0.05)
        w = np.random.default_rng(1).standard_normal(4)
        H = reg.hessian(w)
        v = np.random.default_rng(2).standard_normal(4)
        np.testing.assert_allclose(reg.hvp(w, v), H @ v, atol=1e-10)

    def test_gradient_bounded_by_lam(self):
        reg = SmoothedL1Regularizer(3, lam=2.0, mu=1e-3)
        w = np.array([100.0, -50.0, 0.0])
        g = reg.gradient(w)
        assert np.all(np.abs(g) <= 2.0 + 1e-12)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SmoothedL1Regularizer(0, lam=1.0)
        with pytest.raises(ValueError):
            SmoothedL1Regularizer(3, lam=1.0, mu=0.0)
        with pytest.raises(ValueError):
            SmoothedL1Regularizer(3, lam=-1.0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), mu=st.floats(1e-4, 1e-1))
    def test_property_value_below_l1(self, seed, mu):
        # sqrt(w^2 + mu^2) - mu <= |w| for every entry.
        reg = SmoothedL1Regularizer(6, lam=1.0, mu=mu)
        w = np.random.default_rng(seed).standard_normal(6)
        assert reg.value(w) <= np.abs(w).sum() + 1e-12


class TestElasticNetRegularizer:
    def test_reduces_to_ridge_when_l1_zero(self):
        enet = ElasticNetRegularizer(5, lam_ridge=0.3, lam_l1=0.0)
        ridge = L2Regularizer(5, 0.3)
        w = np.random.default_rng(0).standard_normal(5)
        assert enet.value(w) == pytest.approx(ridge.value(w))
        np.testing.assert_allclose(enet.gradient(w), ridge.gradient(w))

    def test_combines_both_terms(self):
        enet = ElasticNetRegularizer(4, lam_ridge=0.5, lam_l1=0.25, mu=1e-3)
        ridge = L2Regularizer(4, 0.5)
        l1 = SmoothedL1Regularizer(4, 0.25, mu=1e-3)
        w = np.random.default_rng(1).standard_normal(4)
        assert enet.value(w) == pytest.approx(ridge.value(w) + l1.value(w))
        np.testing.assert_allclose(enet.gradient(w), ridge.gradient(w) + l1.gradient(w))
        v = np.random.default_rng(2).standard_normal(4)
        np.testing.assert_allclose(enet.hvp(w, v), ridge.hvp(w, v) + l1.hvp(w, v))

    def test_gradient_matches_finite_differences(self):
        enet = ElasticNetRegularizer(6, lam_ridge=0.1, lam_l1=0.2, mu=1e-2)
        w = np.random.default_rng(3).standard_normal(6)
        np.testing.assert_allclose(
            enet.gradient(w), finite_difference_gradient(enet, w), atol=1e-6
        )

    def test_sparsity_pressure_shrinks_weights(self):
        # Training logistic-style least squares with elastic net should give
        # smaller weights than ridge alone at equal ridge strength.
        rng = np.random.default_rng(4)
        X = rng.standard_normal((60, 8))
        b = X[:, 0] * 2.0 + 0.05 * rng.standard_normal(60)
        from repro.objectives.least_squares import LeastSquares

        loss = LeastSquares(X, b)
        ridge_only = NewtonCG(max_iterations=50).minimize(
            RegularizedObjective(loss, L2Regularizer(8, 1e-3))
        )
        with_l1 = NewtonCG(max_iterations=50).minimize(
            RegularizedObjective(loss, ElasticNetRegularizer(8, 1e-3, 0.5, mu=1e-4))
        )
        assert np.abs(with_l1.w[1:]).sum() < np.abs(ridge_only.w[1:]).sum()

    def test_flops_positive(self):
        enet = ElasticNetRegularizer(10, lam_ridge=0.1, lam_l1=0.1)
        assert enet.flops_value() > 0
        assert enet.flops_gradient() > 0
        assert enet.flops_hvp() > 0

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            ElasticNetRegularizer(0, lam_ridge=0.1, lam_l1=0.1)
