"""Tests for the dataset registry (Table 1 stand-ins)."""

import pytest

from repro.datasets.registry import (
    DATASET_REGISTRY,
    PAPER_TABLE1,
    cifar_like,
    e18_like,
    higgs_like,
    load_dataset,
    mnist_like,
)


class TestRegistryContents:
    def test_all_four_workloads_registered(self):
        assert set(DATASET_REGISTRY) == {
            "higgs_like",
            "mnist_like",
            "cifar_like",
            "e18_like",
        }

    def test_paper_table_matches_paper(self):
        assert PAPER_TABLE1["higgs"]["n_features"] == 28
        assert PAPER_TABLE1["mnist"]["n_features"] == 784
        assert PAPER_TABLE1["cifar10"]["n_features"] == 3072
        assert PAPER_TABLE1["e18"]["n_features"] == 279_998
        assert PAPER_TABLE1["e18"]["n_classes"] == 20

    def test_spec_fields(self):
        spec = DATASET_REGISTRY["mnist_like"]
        assert spec.paper_name == "MNIST"
        assert spec.n_classes == 10
        assert spec.n_features == 784


class TestFactories:
    def test_higgs_shapes(self):
        train, test = higgs_like(n_train=500, n_test=100, random_state=0)
        assert train.n_classes == 2
        assert train.n_features == 28
        assert train.n_samples == 500
        assert test.n_samples == 100

    def test_mnist_shapes(self):
        train, test = mnist_like(n_train=400, n_test=100, random_state=0)
        assert train.n_classes == 10
        assert train.n_features == 784

    def test_cifar_shapes(self):
        train, test = cifar_like(n_train=200, n_test=50, random_state=0)
        assert train.n_classes == 10
        assert train.n_features == 3072

    def test_e18_shapes_and_sparsity(self):
        train, test = e18_like(n_train=200, n_test=50, random_state=0)
        assert train.n_classes == 20
        assert train.is_sparse
        assert train.n_features == int(279_998 * 0.05)

    def test_e18_feature_scale(self):
        train, _ = e18_like(n_train=100, n_test=20, feature_scale=0.01, random_state=0)
        assert train.n_features == int(279_998 * 0.01)


class TestLoadDataset:
    def test_load_by_name(self):
        train, test = load_dataset("higgs_like", n_train=300, n_test=60, random_state=1)
        assert train.n_samples == 300
        assert test.n_samples == 60

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_defaults_used_when_sizes_omitted(self):
        spec = DATASET_REGISTRY["mnist_like"]
        train, test = load_dataset("mnist_like", random_state=0)
        assert train.n_samples == spec.default_train
        assert test.n_samples == spec.default_test

    def test_deterministic_given_seed(self):
        a_train, _ = load_dataset("mnist_like", n_train=200, n_test=40, random_state=3)
        b_train, _ = load_dataset("mnist_like", n_train=200, n_test=40, random_state=3)
        assert (a_train.y == b_train.y).all()

    def test_kwargs_forwarded(self):
        train, _ = load_dataset(
            "e18_like", n_train=100, n_test=20, feature_scale=0.02, random_state=0
        )
        assert train.n_features == int(279_998 * 0.02)
