"""Tests for the LIBSVM / CSV dataset readers and writers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets.base import ClassificationDataset
from repro.datasets.io import load_csv, load_libsvm, save_csv, save_libsvm
from repro.datasets.synthetic import make_sparse_multiclass
from repro.distributed.cluster import SimulatedCluster
from repro.admm.newton_admm import NewtonADMM


class TestLibsvm:
    def test_parse_small_file(self, tmp_path):
        path = tmp_path / "toy.libsvm"
        path.write_text(
            "\n".join(
                [
                    "+1 1:0.5 3:2.0   # a comment",
                    "-1 2:1.5",
                    "",
                    "+1 1:1.0 2:1.0 3:1.0",
                ]
            )
        )
        ds = load_libsvm(path)
        assert ds.n_samples == 3
        assert ds.n_features == 3
        assert ds.is_sparse
        # -1 maps to 0, +1 maps to 1 (sorted order of the original labels).
        np.testing.assert_array_equal(ds.y, [1, 0, 1])
        assert ds.X[0, 2] == 2.0
        assert ds.metadata["format"] == "libsvm"

    def test_zero_based_indices(self, tmp_path):
        path = tmp_path / "zero.libsvm"
        path.write_text("0 0:1.0 2:3.0\n1 1:2.0\n")
        ds = load_libsvm(path, zero_based=True)
        assert ds.n_features == 3
        assert ds.X[0, 0] == 1.0

    def test_n_features_override_and_validation(self, tmp_path):
        path = tmp_path / "wide.libsvm"
        path.write_text("0 1:1.0\n1 2:1.0\n")
        ds = load_libsvm(path, n_features=10)
        assert ds.n_features == 10
        with pytest.raises(ValueError):
            load_libsvm(path, n_features=1)

    def test_invalid_tokens_raise_with_line_number(self, tmp_path):
        path = tmp_path / "bad.libsvm"
        path.write_text("1 1:0.5\nnot_a_label 1:1\n")
        with pytest.raises(ValueError, match="bad.libsvm:2"):
            load_libsvm(path)
        path.write_text("1 broken\n")
        with pytest.raises(ValueError, match="invalid feature token"):
            load_libsvm(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.libsvm"
        path.write_text("\n# nothing here\n")
        with pytest.raises(ValueError):
            load_libsvm(path)

    def test_round_trip_preserves_matrix(self, tmp_path):
        train, _ = (
            make_sparse_multiclass(
                n_samples=60, n_features=40, n_classes=3, density=0.1, random_state=0
            ),
            None,
        )
        path = save_libsvm(train, tmp_path / "roundtrip.libsvm")
        restored = load_libsvm(path, n_features=train.n_features)
        assert restored.n_samples == train.n_samples
        np.testing.assert_array_equal(restored.y, train.y)
        np.testing.assert_allclose(
            np.asarray(restored.X.todense()), np.asarray(train.X.todense()), atol=1e-12
        )

    def test_loaded_dataset_trains_with_newton_admm(self, tmp_path):
        ds = make_sparse_multiclass(
            n_samples=120, n_features=30, n_classes=3, density=0.2, random_state=1
        )
        path = save_libsvm(ds, tmp_path / "train.libsvm")
        loaded = load_libsvm(path, n_features=30)
        cluster = SimulatedCluster(loaded, 2, random_state=0)
        trace = NewtonADMM(lam=1e-3, max_epochs=3, record_accuracy=False).fit(cluster)
        assert np.isfinite(trace.final.objective)


class TestCsv:
    def test_parse_label_first(self, tmp_path):
        path = tmp_path / "toy.csv"
        path.write_text("1,0.5,2.0\n0,1.5,3.0\n1,0.0,1.0\n")
        ds = load_csv(path)
        assert ds.n_samples == 3
        assert ds.n_features == 2
        np.testing.assert_array_equal(ds.y, [1, 0, 1])
        assert not ds.is_sparse

    def test_label_last_column(self, tmp_path):
        path = tmp_path / "last.csv"
        path.write_text("0.5,2.0,1\n1.5,3.0,0\n")
        ds = load_csv(path, label_column=-1)
        assert ds.n_features == 2
        np.testing.assert_array_equal(ds.y, [1, 0])

    def test_skip_header(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("label,f1,f2\n0,1.0,2.0\n1,3.0,4.0\n")
        ds = load_csv(path, skip_header=1)
        assert ds.n_samples == 2

    def test_single_column_rejected(self, tmp_path):
        path = tmp_path / "thin.csv"
        path.write_text("1\n0\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        ds = ClassificationDataset(
            X=rng.standard_normal((25, 4)), y=rng.integers(0, 3, 25), n_classes=3
        )
        path = save_csv(ds, tmp_path / "roundtrip.csv")
        restored = load_csv(path)
        np.testing.assert_array_equal(restored.y, ds.y)
        np.testing.assert_allclose(restored.X, ds.X, atol=1e-12)

    def test_sparse_dataset_saved_densely(self, tmp_path):
        ds = ClassificationDataset(
            X=sp.random(10, 5, density=0.4, format="csr", random_state=0),
            y=np.arange(10) % 2,
            n_classes=2,
        )
        path = save_csv(ds, tmp_path / "sparse.csv")
        restored = load_csv(path)
        np.testing.assert_allclose(restored.X, np.asarray(ds.X.todense()), atol=1e-12)

    def test_noninteger_labels_remapped(self, tmp_path):
        path = tmp_path / "pm1.csv"
        path.write_text("-1,0.1,0.2\n1,0.3,0.4\n-1,0.5,0.6\n")
        ds = load_csv(path)
        np.testing.assert_array_equal(ds.y, [0, 1, 0])
        assert ds.metadata["label_mapping"] == {-1: 0, 1: 1}
