"""Tests for the distributed baselines (GIANT, InexactDANE, AIDE, DiSCO, CoCoA,
synchronous SGD) and the shared distributed-solver machinery."""

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.baselines.aide import AIDE
from repro.baselines.cocoa import CoCoA
from repro.baselines.dane import InexactDANE
from repro.baselines.disco import DiSCO
from repro.baselines.giant import GIANT
from repro.baselines.sync_sgd import SynchronousSGD
from repro.distributed.cluster import SimulatedCluster
from repro.harness.runner import reference_optimum


@pytest.fixture(scope="module")
def split(small_multiclass_split):
    return small_multiclass_split


@pytest.fixture(scope="module")
def cluster4(split):
    train, _ = split
    return SimulatedCluster(train, 4, random_state=0)


@pytest.fixture(scope="module")
def f_star_small(split):
    train, _ = split
    _, f_star = reference_optimum(train, 1e-3, max_iterations=60, cg_max_iter=80)
    return f_star


class TestGIANT:
    def test_objective_decreases(self, cluster4, split):
        train, test = split
        trace = GIANT(lam=1e-3, max_epochs=10).fit(cluster4, test=test)
        assert trace.final.objective < 0.5 * np.log(train.n_classes)

    def test_converges_near_optimum(self, cluster4, f_star_small):
        trace = GIANT(lam=1e-3, max_epochs=30).fit(cluster4)
        assert trace.best_objective() <= f_star_small + 0.05 * abs(f_star_small) + 1e-3

    def test_three_rounds_per_iteration(self, cluster4):
        epochs = 6
        trace = GIANT(lam=1e-3, max_epochs=epochs).fit(cluster4)
        assert trace.final.comm_rounds == 3 * epochs

    def test_step_size_recorded(self, cluster4):
        trace = GIANT(lam=1e-3, max_epochs=3).fit(cluster4)
        assert 0 < trace.final.extras["step_size"] <= 1.0

    def test_line_search_always_full_grid(self, cluster4):
        trace = GIANT(lam=1e-3, max_epochs=2, line_search_max_iter=7).fit(cluster4)
        assert trace.final.extras["line_search_evaluations"] == 8.0

    def test_single_worker_matches_newton_behaviour(self, split, f_star_small):
        train, _ = split
        cluster = SimulatedCluster(train, 1, random_state=0)
        trace = GIANT(lam=1e-3, max_epochs=20).fit(cluster)
        assert trace.best_objective() <= f_star_small + 0.05 * abs(f_star_small) + 1e-3


class TestInexactDANEAndAIDE:
    def test_dane_objective_decreases(self, cluster4, split):
        train, test = split
        trace = InexactDANE(
            lam=1e-3, max_epochs=2, svrg_step_size=0.2, svrg_outer=3, svrg_max_inner=100
        ).fit(cluster4, test=test)
        assert trace.final.objective < np.log(train.n_classes)

    def test_dane_two_rounds_per_iteration(self, cluster4):
        trace = InexactDANE(
            lam=1e-3, max_epochs=3, svrg_outer=2, svrg_max_inner=50
        ).fit(cluster4)
        assert trace.final.comm_rounds == 6

    def test_dane_epoch_time_exceeds_admm(self, cluster4):
        dane = InexactDANE(
            lam=1e-3, max_epochs=2, svrg_outer=3, svrg_max_inner=200
        ).fit(cluster4)
        admm = NewtonADMM(lam=1e-3, max_epochs=2).fit(cluster4)
        dane_epoch = dane.final.modelled_time / dane.n_epochs
        admm_epoch = admm.final.modelled_time / admm.n_epochs
        assert dane_epoch > admm_epoch

    def test_aide_runs_and_decreases(self, cluster4, split):
        train, test = split
        trace = AIDE(
            lam=1e-3, max_epochs=2, tau=1.0, svrg_outer=3, svrg_step_size=0.2,
            svrg_max_inner=100,
        ).fit(cluster4, test=test)
        assert trace.final.objective < np.log(train.n_classes)
        assert "momentum" in trace.final.extras

    def test_aide_momentum_formula(self):
        aide = AIDE(lam=1e-2, tau=1e-2)
        q = 1e-2 / 2e-2
        expected = (1 - np.sqrt(q)) / (1 + np.sqrt(q))
        assert aide._momentum() == pytest.approx(expected)

    def test_aide_zero_tau_no_momentum(self):
        assert AIDE(lam=1e-3, tau=0.0)._momentum() == 0.0

    def test_dane_invalid_mu_rejected(self):
        with pytest.raises(ValueError):
            InexactDANE(mu=-1.0)


class TestDiSCO:
    def test_converges_near_optimum(self, cluster4, f_star_small):
        trace = DiSCO(lam=1e-3, max_epochs=15, cg_max_iter=30).fit(cluster4)
        assert trace.best_objective() <= f_star_small + 0.05 * abs(f_star_small) + 1e-3

    def test_communication_rounds_include_cg(self, cluster4):
        trace = DiSCO(lam=1e-3, max_epochs=2, cg_max_iter=5).fit(cluster4)
        # per epoch: 1 gradient round + cg rounds + 1 damping HVP round
        per_epoch = trace.final.comm_rounds / trace.n_epochs
        assert per_epoch > 2
        assert per_epoch <= 7

    def test_more_rounds_than_admm(self, cluster4):
        disco = DiSCO(lam=1e-3, max_epochs=4, cg_max_iter=10).fit(cluster4)
        admm = NewtonADMM(lam=1e-3, max_epochs=4).fit(cluster4)
        assert disco.final.comm_rounds > admm.final.comm_rounds

    def test_undamped_option(self, cluster4):
        trace = DiSCO(lam=1e-3, max_epochs=3, damped=False).fit(cluster4)
        assert trace.final.extras["step_size"] == 1.0


class TestCoCoA:
    @pytest.fixture(scope="class")
    def binary_cluster(self, tiny_binary):
        return SimulatedCluster(tiny_binary, 3, random_state=0)

    def test_primal_objective_decreases(self, binary_cluster, tiny_binary):
        trace = CoCoA(lam=1e-2, max_epochs=20, local_passes=2).fit(binary_cluster)
        assert trace.final.objective < np.log(2)
        assert trace.final.objective <= trace.records[0].objective

    def test_duality_gap_shrinks(self, binary_cluster):
        trace = CoCoA(lam=1e-2, max_epochs=25, local_passes=2).fit(binary_cluster)
        gap_first = trace.records[1].objective - trace.records[1].extras["dual_objective"]
        gap_last = trace.final.objective - trace.final.extras["dual_objective"]
        assert gap_last < gap_first
        assert gap_last >= -1e-6  # weak duality

    def test_one_round_per_iteration(self, binary_cluster):
        trace = CoCoA(lam=1e-2, max_epochs=5).fit(binary_cluster)
        assert trace.final.comm_rounds == 5

    def test_multiclass_rejected(self, cluster4):
        with pytest.raises(ValueError, match="binary"):
            CoCoA(lam=1e-3, max_epochs=1).fit(cluster4)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CoCoA(local_passes=0)
        with pytest.raises(ValueError):
            CoCoA(alpha_init=0.0)


class TestSynchronousSGD:
    def test_objective_decreases(self, cluster4, split):
        train, test = split
        trace = SynchronousSGD(
            lam=1e-3, max_epochs=10, step_size=0.5, batch_size=32, random_state=0
        ).fit(cluster4, test=test)
        assert trace.final.objective < np.log(train.n_classes)

    def test_many_rounds_per_epoch(self, cluster4):
        trace = SynchronousSGD(
            lam=1e-3, max_epochs=2, step_size=0.1, batch_size=16, random_state=0
        ).fit(cluster4)
        steps = trace.final.extras["steps"]
        assert steps > 1
        assert trace.final.comm_rounds == pytest.approx(2 * steps)

    def test_steps_per_epoch_override(self, cluster4):
        trace = SynchronousSGD(
            lam=1e-3, max_epochs=2, step_size=0.1, steps_per_epoch=3, random_state=0
        ).fit(cluster4)
        assert trace.final.extras["steps"] == 3.0

    def test_momentum_accepted(self, cluster4):
        trace = SynchronousSGD(
            lam=1e-3, max_epochs=2, step_size=0.1, momentum=0.9, random_state=0
        ).fit(cluster4)
        assert np.isfinite(trace.final.objective)

    def test_newton_admm_faster_to_target_than_sgd(self, cluster4):
        # The Figure-4 claim, at test scale: ADMM reaches SGD's final
        # objective in less modelled time than SGD needed.
        sgd = SynchronousSGD(
            lam=1e-3, max_epochs=8, step_size=0.5, batch_size=32, random_state=0
        ).fit(cluster4)
        admm = NewtonADMM(lam=1e-3, max_epochs=15).fit(cluster4)
        from repro.metrics.traces import time_to_objective

        t_admm = time_to_objective(admm, sgd.final.objective)
        assert t_admm < sgd.total_time()

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SynchronousSGD(step_size=0.0)
        with pytest.raises(ValueError):
            SynchronousSGD(batch_size=0)
        with pytest.raises(ValueError):
            SynchronousSGD(momentum=1.5)


class TestSolverBaseBehaviour:
    def test_hyperparameters_serializable(self):
        solver = GIANT(lam=1e-3, max_epochs=5)
        params = solver.hyperparameters()
        assert params["lam"] == 1e-3
        assert params["max_epochs"] == 5

    def test_trace_info_contains_provenance(self, cluster4, split):
        _, test = split
        trace = GIANT(lam=1e-3, max_epochs=2).fit(cluster4, test=test)
        assert trace.info["cluster"]["n_workers"] == 4
        assert "communication" in trace.info
        assert trace.info["communication"]["rounds"] == trace.final.comm_rounds

    def test_record_accuracy_can_be_disabled(self, cluster4):
        trace = GIANT(lam=1e-3, max_epochs=2, record_accuracy=False).fit(cluster4)
        assert np.isnan(trace.final.train_accuracy)

    def test_invalid_base_params_rejected(self):
        with pytest.raises(ValueError):
            GIANT(max_epochs=0)
        with pytest.raises(ValueError):
            GIANT(evaluate_every=0)
        with pytest.raises(ValueError):
            GIANT(lam=-0.1)
