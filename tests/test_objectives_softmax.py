"""Tests for the multiclass softmax cross-entropy objective."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objectives.softmax import SoftmaxCrossEntropy
from tests.conftest import numerical_gradient


@pytest.fixture()
def problem():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((40, 5))
    y = rng.integers(0, 3, size=40)
    y[:3] = [0, 1, 2]
    return X, y


class TestBasics:
    def test_dimension(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        assert obj.dim == 2 * 5

    def test_value_at_zero_is_log_C(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        np.testing.assert_allclose(obj.value(np.zeros(obj.dim)), np.log(3), rtol=1e-12)

    def test_sum_vs_mean_scaling(self, problem):
        X, y = problem
        mean_obj = SoftmaxCrossEntropy(X, y, 3, scale="mean")
        sum_obj = SoftmaxCrossEntropy(X, y, 3, scale="sum")
        w = np.random.default_rng(1).standard_normal(mean_obj.dim)
        np.testing.assert_allclose(sum_obj.value(w), 40 * mean_obj.value(w), rtol=1e-12)

    def test_explicit_float_scale(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3, scale=0.5)
        sum_obj = SoftmaxCrossEntropy(X, y, 3, scale="sum")
        w = np.ones(obj.dim) * 0.1
        np.testing.assert_allclose(obj.value(w), 0.5 * sum_obj.value(w))

    def test_wrong_weight_length_rejected(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        with pytest.raises(ValueError):
            obj.value(np.zeros(obj.dim + 1))

    def test_single_class_count_rejected(self, problem):
        X, y = problem
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy(X, np.zeros(40, dtype=int), 1)

    def test_value_and_gradient_consistent(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        w = np.random.default_rng(2).standard_normal(obj.dim) * 0.3
        v, g = obj.value_and_gradient(w)
        np.testing.assert_allclose(v, obj.value(w))
        np.testing.assert_allclose(g, obj.gradient(w))


class TestDerivatives:
    def test_gradient_matches_finite_differences(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        w = np.random.default_rng(3).standard_normal(obj.dim) * 0.2
        np.testing.assert_allclose(
            obj.gradient(w), numerical_gradient(obj.value, w), atol=1e-6
        )

    def test_hvp_matches_finite_difference_of_gradient(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        rng = np.random.default_rng(4)
        w = rng.standard_normal(obj.dim) * 0.2
        v = rng.standard_normal(obj.dim)
        eps = 1e-6
        fd = (obj.gradient(w + eps * v) - obj.gradient(w - eps * v)) / (2 * eps)
        np.testing.assert_allclose(obj.hvp(w, v), fd, atol=1e-5)

    def test_hessian_symmetric_psd(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        w = np.random.default_rng(5).standard_normal(obj.dim) * 0.1
        H = obj.hessian(w)
        np.testing.assert_allclose(H, H.T, atol=1e-10)
        eigs = np.linalg.eigvalsh(H)
        assert eigs.min() >= -1e-8

    def test_hvp_linear_in_v(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        rng = np.random.default_rng(6)
        w = rng.standard_normal(obj.dim) * 0.2
        v1, v2 = rng.standard_normal((2, obj.dim))
        lhs = obj.hvp(w, 2.0 * v1 - 3.0 * v2)
        rhs = 2.0 * obj.hvp(w, v1) - 3.0 * obj.hvp(w, v2)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_hvp_psd(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((15, 4))
        y = rng.integers(0, 3, size=15)
        obj = SoftmaxCrossEntropy(X, y, 3)
        w = rng.standard_normal(obj.dim)
        v = rng.standard_normal(obj.dim)
        assert float(v @ obj.hvp(w, v)) >= -1e-9


class TestSparseAndBinary:
    def test_sparse_matches_dense(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((30, 8))
        X[np.abs(X) < 0.8] = 0.0
        y = rng.integers(0, 4, size=30)
        dense = SoftmaxCrossEntropy(X, y, 4)
        sparse = SoftmaxCrossEntropy(sp.csr_matrix(X), y, 4)
        w = rng.standard_normal(dense.dim) * 0.3
        v = rng.standard_normal(dense.dim)
        np.testing.assert_allclose(dense.value(w), sparse.value(w), rtol=1e-12)
        np.testing.assert_allclose(dense.gradient(w), sparse.gradient(w), rtol=1e-10)
        np.testing.assert_allclose(dense.hvp(w, v), sparse.hvp(w, v), rtol=1e-10)

    def test_binary_case_matches_logistic_form(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((25, 6))
        y = rng.integers(0, 2, size=25)
        obj = SoftmaxCrossEntropy(X, y, 2)
        w = rng.standard_normal(6) * 0.5
        # For C=2 the loss per sample is log(1 + exp(z)) - 1{y=0} z, z = x@w.
        z = X @ w
        expected = np.mean(np.log1p(np.exp(z)) - (y == 0) * z)
        np.testing.assert_allclose(obj.value(w), expected, rtol=1e-10)


class TestPrediction:
    def test_predict_shapes(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        w = np.zeros(obj.dim)
        proba = obj.predict_proba(w)
        assert proba.shape == (40, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)
        preds = obj.predict(w)
        assert preds.shape == (40,)
        assert set(np.unique(preds)).issubset({0, 1, 2})

    def test_predict_on_new_data(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        X_new = np.random.default_rng(7).standard_normal((5, 5))
        assert obj.predict(np.zeros(obj.dim), X_new).shape == (5,)

    def test_training_improves_fit(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        w = np.zeros(obj.dim)
        # a few gradient steps should reduce the loss
        for _ in range(50):
            w = w - 0.5 * obj.gradient(w)
        assert obj.value(w) < np.log(3) - 0.05


class TestMinibatchAndFlops:
    def test_minibatch_mean_semantics(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        idx = np.arange(10)
        batch = obj.minibatch(idx)
        assert batch.n_samples == 10
        full_on_subset = SoftmaxCrossEntropy(X[idx], y[idx], 3)
        w = np.random.default_rng(8).standard_normal(obj.dim)
        np.testing.assert_allclose(batch.value(w), full_on_subset.value(w))

    def test_minibatch_gradient_unbiased(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        w = np.random.default_rng(9).standard_normal(obj.dim) * 0.1
        grads = np.zeros(obj.dim)
        n = X.shape[0]
        for start in range(0, n, 10):
            idx = np.arange(start, start + 10)
            grads += obj.minibatch(idx).gradient(w) * 10
        np.testing.assert_allclose(grads / n, obj.gradient(w), atol=1e-12)

    def test_flop_counts_positive_and_ordered(self, problem):
        X, y = problem
        obj = SoftmaxCrossEntropy(X, y, 3)
        assert 0 < obj.flops_value() < obj.flops_gradient()
        assert obj.flops_hvp() > 0
