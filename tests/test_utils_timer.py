"""Tests for repro.utils.timer."""

import pytest

from repro.utils.timer import SimulatedClock, Stopwatch


class TestStopwatch:
    def test_initially_zero(self):
        assert Stopwatch().elapsed == 0.0

    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        assert sw.elapsed >= 0.0
        first = sw.elapsed
        with sw:
            pass
        assert sw.elapsed >= first

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_flag(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_elapsed_while_running_grows(self):
        sw = Stopwatch().start()
        a = sw.elapsed
        b = sw.elapsed
        assert b >= a
        sw.stop()


class TestSimulatedClock:
    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5, "compute")
        clock.advance(0.5, "communication")
        assert clock.time == pytest.approx(2.0)
        assert clock.category("compute") == pytest.approx(1.5)
        assert clock.category("communication") == pytest.approx(0.5)

    def test_negative_advance_raises(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_unknown_category_zero(self):
        assert SimulatedClock().category("nope") == 0.0

    def test_marks(self):
        clock = SimulatedClock()
        clock.advance(1.0)
        clock.mark()
        clock.advance(2.0)
        clock.mark()
        assert clock.marks == [1.0, 3.0]

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(1.0, "x")
        clock.mark()
        clock.reset()
        assert clock.time == 0.0
        assert clock.by_category == {}
        assert clock.marks == []

    def test_snapshot_includes_total(self):
        clock = SimulatedClock()
        clock.advance(1.0, "compute")
        snap = clock.snapshot()
        assert snap["total"] == pytest.approx(1.0)
        assert snap["compute"] == pytest.approx(1.0)

    def test_default_category_is_compute(self):
        clock = SimulatedClock()
        clock.advance(0.25)
        assert clock.category("compute") == pytest.approx(0.25)
