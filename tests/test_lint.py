"""Unit tests for the repo-contract lint (repro.analysis.lint).

Each rule is exercised on synthetic sources under the scope pattern that
activates it, plus the suppression machinery (inline comments, baseline
fingerprints, fingerprint stability under unrelated edits) and — the gate
this PR adds to CI — the repo's own source tree linting clean against the
committed baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.lint import (
    LINT_RULES,
    lint_source,
    load_baseline,
    run_lint,
    save_baseline,
)
from repro.harness.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"


def _rules(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# Rules on synthetic sources
# ---------------------------------------------------------------------------
class TestRules:
    def test_rpr001_raw_numpy_in_backend_generic_module(self):
        src = "import numpy as np\n\ndef f(x):\n    return np.sqrt(x)\n"
        assert _rules(lint_source(src, "repro/objectives/foo.py")) == ["RPR001"]
        # same code outside the backend-generic scope is fine
        assert lint_source(src, "repro/harness/foo.py") == []

    def test_rpr001_allows_host_side_bookkeeping(self):
        src = (
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.asarray(x, dtype=np.dtype('float64'))\n"
        )
        assert lint_source(src, "repro/linalg/foo.py") == []

    def test_rpr001_tracks_import_alias(self):
        src = "import numpy\n\ndef f(x):\n    return numpy.log(x)\n"
        assert _rules(lint_source(src, "repro/linalg/foo.py")) == ["RPR001"]

    def test_rpr002_global_rng_and_clock_reads(self):
        src = (
            "import time\n"
            "import numpy as np\n"
            "def f():\n"
            "    a = np.random.rand(3)\n"
            "    b = np.random.default_rng()\n"
            "    t = time.perf_counter()\n"
            "    return a, b, t\n"
        )
        assert _rules(lint_source(src, "repro/baselines/foo.py")) == [
            "RPR002",
            "RPR002",
            "RPR002",
        ]

    def test_rpr002_seeded_default_rng_is_allowed(self):
        src = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert lint_source(src, "repro/distributed/foo.py") == []

    def test_rpr003_module_level_mutable_state(self):
        src = "CACHE = {}\nITEMS = [1, 2]\nOK = (1, 2)\n__all__ = ['f']\n"
        assert _rules(lint_source(src, "repro/distributed/foo.py")) == [
            "RPR003",
            "RPR003",
        ]
        # function-local mutables are fine
        assert lint_source(
            "def f():\n    cache = {}\n    return cache\n",
            "repro/distributed/foo.py",
        ) == []

    def test_rpr004_bare_except_and_silent_swallow(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n"
            "def h():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
            "def ok():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert _rules(lint_source(src, "repro/serving/foo.py")) == [
            "RPR004",
            "RPR004",
        ]

    def test_rpr000_syntax_error(self):
        assert _rules(lint_source("def f(:\n", "repro/foo.py")) == ["RPR000"]

    def test_rule_catalogue_is_complete(self):
        assert set(LINT_RULES) == {"RPR001", "RPR002", "RPR003", "RPR004"}


# ---------------------------------------------------------------------------
# Suppression machinery
# ---------------------------------------------------------------------------
class TestSuppression:
    SRC = "import numpy as np\n\ndef f(x):\n    return np.sqrt(x)\n"

    def _tree(self, tmp_path: Path, source: str) -> Path:
        module = tmp_path / "repro" / "objectives"
        module.mkdir(parents=True)
        (module / "foo.py").write_text(source)
        return tmp_path

    def test_inline_suppression(self, tmp_path):
        suppressed = self.SRC.replace(
            "return np.sqrt(x)",
            "return np.sqrt(x)  # repro-lint: ignore[RPR001] reason here",
        )
        report = run_lint(self._tree(tmp_path, suppressed))
        assert report.ok
        assert _rules(report.suppressed) == ["RPR001"]

    def test_inline_suppression_is_rule_specific(self, tmp_path):
        wrong_rule = self.SRC.replace(
            "return np.sqrt(x)",
            "return np.sqrt(x)  # repro-lint: ignore[RPR002]",
        )
        report = run_lint(self._tree(tmp_path, wrong_rule))
        assert not report.ok

    def test_baseline_round_trip(self, tmp_path):
        root = self._tree(tmp_path, self.SRC)
        first = run_lint(root)
        assert not first.ok
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, first.findings)
        assert load_baseline(baseline) == {
            f.fingerprint() for f in first.findings
        }
        second = run_lint(root, baseline=baseline)
        assert second.ok
        assert _rules(second.baselined) == ["RPR001"]

    def test_fingerprints_survive_unrelated_edits(self, tmp_path):
        root = self._tree(tmp_path, self.SRC)
        before = run_lint(root).findings
        shifted = "# a new leading comment\n\n\n" + self.SRC
        (root / "repro" / "objectives" / "foo.py").write_text(shifted)
        after = run_lint(root).findings
        assert [f.fingerprint() for f in before] == [
            f.fingerprint() for f in after
        ]
        assert before[0].line != after[0].line

    def test_identical_lines_get_distinct_fingerprints(self, tmp_path):
        doubled = (
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.sqrt(x)\n"
            "def g(x):\n"
            "    return np.sqrt(x)\n"
        )
        report = run_lint(self._tree(tmp_path, doubled))
        prints = [f.fingerprint() for f in report.findings]
        assert len(prints) == 2 and len(set(prints)) == 2


# ---------------------------------------------------------------------------
# The repo's own tree is clean (the CI gate)
# ---------------------------------------------------------------------------
def test_repo_lints_clean_against_committed_baseline():
    report = run_lint(SRC_ROOT, baseline=REPO_ROOT / "lint_baseline.json")
    assert report.ok, report.render()
    assert report.files_scanned > 50


def test_cli_lint_exits_zero_and_writes_json(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = cli_main(["lint", "--json", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is True
    assert payload["findings"] == []


def test_cli_lint_fails_on_findings(tmp_path):
    module = tmp_path / "repro" / "objectives"
    module.mkdir(parents=True)
    (module / "bad.py").write_text(
        "import numpy as np\n\ndef f(x):\n    return np.sqrt(x)\n"
    )
    assert cli_main(["lint", "--root", str(tmp_path)]) == 1
