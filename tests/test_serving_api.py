"""HTTP API tests over the stdlib fallback server (full round trips with
``http.client``), plus a FastAPI-parity test when the ``serve`` extra is
installed.  Every client error must come back as a structured
``{"error": {"type", "detail"}}`` body — never a traceback."""

import http.client
import json

import numpy as np
import pytest

from repro.harness.serialization import encode_array, save_trace
from repro.metrics.traces import EpochRecord, RunTrace
from repro.serving.app import build_api, fastapi_available
from repro.serving.http_fallback import FallbackServer

P, C = 6, 4


def _weights(seed=0, dtype=np.float64):
    return np.random.default_rng(seed).standard_normal(P * (C - 1)).astype(dtype)


class Client:
    """Tiny JSON client over http.client against the fallback server."""

    def __init__(self, server):
        self.host, self.port = server.host, server.port

    def request(self, method, path, payload=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload=None):
        return self.request("POST", path, payload)


@pytest.fixture
def server(tmp_path):
    api = build_api(tmp_path / "registry", window_s=0.001)
    server = FallbackServer(api).start_background()
    yield server
    server.shutdown()


@pytest.fixture
def client(server):
    return Client(server)


def _publish(client, name="m", dtype=np.float64, seed=0):
    payload = {"weights": encode_array(_weights(seed, dtype)), "n_classes": C}
    status, body = client.post(f"/api/v1/models/{name}", payload)
    assert status == 201, body
    return body


class TestModels:
    def test_health(self, client):
        status, body = client.get("/api/v1/health")
        assert status == 200
        assert body["status"] == "ok"

    def test_publish_describe_list(self, client):
        body = _publish(client)
        assert body["published"]["version"] == 1
        assert body["active"] is True
        status, described = client.get("/api/v1/models/m")
        assert status == 200
        assert described["current"] == 1
        assert described["model"]["n_classes"] == C
        status, listed = client.get("/api/v1/models")
        assert [m["name"] for m in listed["models"]] == ["m"]

    def test_publish_preserves_dtype(self, client, server):
        _publish(client, dtype=np.float32)
        model = server.api.registry.load("m")
        assert model.weights.dtype == np.float32
        w = _weights(0, np.float32)
        assert np.array_equal(model.weights.view(np.uint32), w.view(np.uint32))

    def test_publish_plain_list_weights(self, client):
        payload = {"weights": [0.1] * (P * (C - 1)), "n_classes": C}
        status, body = client.post("/api/v1/models/plain", payload)
        assert status == 201, body

    def test_publish_from_trace_path(self, client, tmp_path):
        trace = RunTrace(method="newton_admm", dataset="d", n_workers=2)
        trace.records.append(EpochRecord(epoch=1, objective=0.5, test_accuracy=0.8))
        trace.final_w = _weights()
        trace.info["cluster"] = {"n_classes": C}
        path = save_trace(trace, tmp_path / "run.json", include_weights=True)
        status, body = client.post(
            "/api/v1/models/traced", {"trace_path": str(path)}
        )
        assert status == 201, body
        assert body["published"]["metadata"]["method"] == "newton_admm"

    def test_publish_missing_trace_path_is_structured_400(self, client):
        status, body = client.post(
            "/api/v1/models/m", {"trace_path": "/nope/missing.json"}
        )
        assert status == 400
        assert body["error"]["type"] == "registry_error"

    def test_publish_incomplete_payload(self, client):
        status, body = client.post("/api/v1/models/m", {"n_classes": C})
        assert status == 400
        assert "weights" in body["error"]["detail"]

    def test_activate_and_rollback(self, client):
        _publish(client, seed=1)
        _publish(client, seed=2)
        status, body = client.post("/api/v1/models/m/activate", {"version": 1})
        assert status == 200
        assert body["activated"]["version"] == 1
        status, body = client.post("/api/v1/models/m/rollback")
        assert status == 200
        assert body["activated"]["version"] == 2

    def test_activate_unknown_version_is_404(self, client):
        _publish(client)
        status, body = client.post("/api/v1/models/m/activate", {"version": 7})
        assert status == 404
        assert body["error"]["type"] == "model_not_found"


class TestPredict:
    def test_batched_and_direct_agree(self, client):
        _publish(client)
        rows = np.random.default_rng(3).standard_normal((4, P)).tolist()
        status, batched = client.post(
            "/api/v1/models/m/predict_proba", {"rows": rows}
        )
        assert status == 200
        assert batched["mode"] == "batched"
        assert batched["n_classes"] == C
        status, direct = client.post(
            "/api/v1/models/m/predict_proba", {"rows": rows, "mode": "direct"}
        )
        assert status == 200
        assert batched["probabilities"] == direct["probabilities"]
        status, labels = client.post("/api/v1/models/m/predict", {"rows": rows})
        assert status == 200
        expected = [int(np.argmax(row)) for row in batched["probabilities"]]
        assert labels["predictions"] == expected

    def test_feature_mismatch_is_422(self, client):
        _publish(client)
        status, body = client.post(
            "/api/v1/models/m/predict", {"rows": [[1.0, 2.0]]}
        )
        assert status == 422
        assert body["error"]["type"] == "inference_error"
        assert "features" in body["error"]["detail"]

    def test_bad_mode_is_422(self, client):
        _publish(client)
        status, body = client.post(
            "/api/v1/models/m/predict", {"rows": [[0.0] * P], "mode": "turbo"}
        )
        assert status == 422

    def test_unknown_model_is_404(self, client):
        status, body = client.post(
            "/api/v1/models/ghost/predict", {"rows": [[0.0] * P]}
        )
        assert status == 404
        assert body["error"]["type"] == "model_not_found"

    def test_corrupt_model_file_is_structured_409(self, client, server):
        """A model corrupted on disk before the engine ever loaded it (an
        already-served model keeps scoring from its in-memory snapshot)."""
        model_dir = server.api.registry.root / "rotten"
        model_file = model_dir / "versions" / "000001" / "model.json"
        model_file.parent.mkdir(parents=True)
        model_file.write_text("{ definitely not json")
        (model_dir / "CURRENT").write_text("1\n")
        status, body = client.post(
            "/api/v1/models/rotten/predict", {"rows": [[0.0] * P]}
        )
        assert status == 409
        assert body["error"]["type"] == "model_format_error"
        assert "Traceback" not in json.dumps(body)

    def test_stats_counts_requests(self, client):
        _publish(client)
        client.post("/api/v1/models/m/predict", {"rows": [[0.0] * P]})
        status, body = client.get("/api/v1/stats")
        assert status == 200
        assert body["engine"]["models"]["m"]["requests"] >= 1


class TestRouting:
    def test_unknown_path_is_404(self, client):
        status, body = client.get("/api/v2/na")
        assert status == 404
        assert body["error"]["type"] == "not_found"

    def test_wrong_method_is_405(self, client):
        status, body = client.get("/api/v1/jobs/job-0001/cancel")
        assert status == 405
        assert body["error"]["type"] == "method_not_allowed"

    def test_bad_json_body_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/api/v1/models/m",
                body="{ nope",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert body["error"]["type"] == "bad_json"


class TestJobs:
    TINY = {
        "solver": {"name": "newton_admm", "max_epochs": 2},
        "cluster": {
            "dataset": "mnist_like",
            "n_workers": 2,
            "n_train": 240,
            "n_test": 60,
        },
    }

    def test_submit_poll_and_serve_result(self, client, server):
        payload = dict(self.TINY, publish_as="trained")
        status, body = client.post("/api/v1/jobs", payload)
        assert status == 201, body
        job_id = body["id"]
        done = server.api.jobs.wait(job_id, timeout=120.0)
        assert done["status"] == "succeeded"
        status, body = client.get(f"/api/v1/jobs/{job_id}?after=1")
        assert status == 200
        assert [r["epoch"] for r in body["records"]] == [2]
        # the published model is immediately servable
        n_features = server.api.registry.load("trained").n_features
        status, body = client.post(
            "/api/v1/models/trained/predict", {"rows": [[0.0] * n_features]}
        )
        assert status == 200
        status, listed = client.get("/api/v1/jobs")
        assert status == 200
        assert listed["jobs"][0]["id"] == job_id

    def test_invalid_job_is_400(self, client):
        status, body = client.post("/api/v1/jobs", {"solver": {"name": "nope"}})
        assert status == 400
        assert body["error"]["type"] == "job_error"

    def test_unknown_job_is_404(self, client):
        status, body = client.get("/api/v1/jobs/job-9999")
        assert status == 404
        assert body["error"]["type"] == "job_not_found"

    def test_cancel_long_job(self, client, server):
        payload = {
            "solver": {"name": "newton_admm", "max_epochs": 500},
            "cluster": dict(self.TINY["cluster"]),
        }
        status, body = client.post("/api/v1/jobs", payload)
        assert status == 201
        job_id = body["id"]
        import time

        for _ in range(2000):
            if server.api.jobs.get(job_id)["epochs_done"] >= 1:
                break
            time.sleep(0.01)
        status, body = client.post(f"/api/v1/jobs/{job_id}/cancel")
        assert status == 200
        assert body["cancel_requested"] is True
        done = server.api.jobs.wait(job_id, timeout=120.0)
        assert done["status"] == "cancelled"
        assert done["epochs_done"] < 500


@pytest.mark.skipif(not fastapi_available(), reason="serve extra not installed")
class TestFastAPIParity:
    """When FastAPI is installed (CI's serving job), the app must serve the
    same routes with the same JSON as the stdlib fallback."""

    def test_routes_match_fallback(self, tmp_path):
        httpx = pytest.importorskip("httpx")
        starlette_client = pytest.importorskip("starlette.testclient")
        from repro.serving.app import create_app

        api = build_api(tmp_path / "registry", window_s=0.001)
        app = create_app(api=api)
        with starlette_client.TestClient(app) as tc:
            assert tc.get("/api/v1/health").json()["status"] == "ok"
            payload = {"weights": encode_array(_weights()), "n_classes": C}
            response = tc.post("/api/v1/models/m", json=payload)
            assert response.status_code == 201
            rows = [[0.1] * P, [0.2] * P]
            response = tc.post("/api/v1/models/m/predict", json={"rows": rows})
            assert response.status_code == 200
            assert len(response.json()["predictions"]) == 2
            response = tc.post("/api/v1/models/m/predict", json={"rows": [[1.0]]})
            assert response.status_code == 422
            assert response.json()["error"]["type"] == "inference_error"
            assert tc.get("/api/v1/models/ghost").status_code == 404
        api.engine.close()
        del httpx  # imported only to skip when the extra is missing
