"""Fault model v2 tests: network partitions (link loss distinct from node
loss), correlated failure groups, checkpoint-cost restarts, the extended
``--faults`` spec grammar (duplicate/garbled-token diagnostics and the
spec→describe roundtrip), and the Gantt partition markers."""

import json
import math

import numpy as np
import pytest

from repro.admm.async_newton_admm import AsyncNewtonADMM
from repro.admm.newton_admm import NewtonADMM
from repro.baselines.async_sgd import AsynchronousSGD
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.faults import (
    CheckpointModel,
    FailureModel,
    PartitionError,
    PartitionModel,
    WorkerLostError,
)
from repro.harness.plotting import plot_gantt
from repro.metrics.traces import time_to_objective


@pytest.fixture(scope="module")
def dataset():
    return make_multiclass_gaussian(240, 10, 3, class_separation=3.0, random_state=0)


@pytest.fixture(scope="module")
def nofault_trace(dataset):
    cluster = SimulatedCluster(dataset, 4, random_state=0)
    return NewtonADMM(lam=1e-3, max_epochs=6, record_accuracy=False).fit(cluster)


def _window(nofault_trace, start=0.35, length=0.5):
    total = nofault_trace.final.modelled_time
    return start * total, (start + length) * total


def _partition_faults(nofault_trace, worker=1, **kwargs):
    lo, hi = _window(nofault_trace, **kwargs)
    return FailureModel(partitions=PartitionModel(cuts=[((worker,), lo, hi)]))


# ---------------------------------------------------------------------------
# PartitionModel / CheckpointModel units
# ---------------------------------------------------------------------------
class TestPartitionModel:
    def test_windows_and_heal(self):
        model = PartitionModel(cuts=[((0, 2), 2.0, 5.0)])
        assert model.is_cut(0, 2.0) and model.is_cut(2, 4.9)
        assert not model.is_cut(0, 1.9) and not model.is_cut(0, 5.0)
        assert not model.is_cut(1, 3.0)
        assert model.heal_time(0, 3.0) == 5.0
        assert model.heal_time(1, 3.0) == 3.0  # not cut: unchanged
        assert model.cut_start(2, 4.0) == 2.0

    def test_chained_windows_heal_at_the_gap(self):
        model = PartitionModel(cuts=[((0,), 1.0, 3.0), ((0,), 2.5, 6.0)])
        assert model.heal_time(0, 1.5) == 6.0

    def test_disjoint_windows_record_separate_events(self):
        # A second cut on the same worker is its own partition/heal pair,
        # even when no synchronization point lands in the gap between them.
        inj = FailureModel(
            partitions=PartitionModel(cuts=[((0,), 2.0, 4.0), ((0,), 6.0, 8.0)])
        ).start(2)
        inj.note_partition(0, 2.0)
        assert inj.rejoin_healed(7.0) == [0]  # window 1 healed at 4.0
        inj.note_partition(0, 6.0)
        inj.rejoin_healed(9.0)
        assert [(e["kind"], e["time"]) for e in inj.events] == [
            ("partition", 2.0), ("heal", 4.0),
            ("partition", 6.0), ("heal", 8.0),
        ]

    def test_never_healing_window(self):
        model = PartitionModel(cuts=[((0,), 1.0, float("inf"))])
        assert model.is_cut(0, 1e12)
        assert math.isinf(model.heal_time(0, 2.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionModel(cuts=[((), 0.0, 1.0)])
        with pytest.raises(ValueError):
            PartitionModel(cuts=[((-1,), 0.0, 1.0)])
        with pytest.raises(ValueError):
            PartitionModel(cuts=[((0,), 2.0, 2.0)])
        with pytest.raises(ValueError):
            PartitionModel(cuts=[((0,), -1.0, 2.0)])

    def test_active_flag_feeds_failure_model(self):
        assert not FailureModel().active
        assert FailureModel(
            partitions=PartitionModel(cuts=[((0,), 1.0, 2.0)])
        ).active
        # A checkpoint model alone triggers nothing.
        assert not FailureModel(checkpoint=CheckpointModel(interval=1.0)).active


class TestCheckpointModel:
    def test_recovery_math(self):
        ckpt = CheckpointModel(interval=10.0, write_cost=1.0, restore_cost=2.0)
        assert ckpt.last_durable(25.0) == 20.0
        assert ckpt.last_durable(20.5) == 10.0  # t=20 write not finished
        assert ckpt.last_durable(5.0) == 0.0
        assert ckpt.recovery_seconds(25.0) == pytest.approx(7.0)
        assert ckpt.recovery_seconds(0.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointModel(interval=0.0)
        with pytest.raises(ValueError):
            CheckpointModel(interval=1.0, write_cost=-1.0)
        with pytest.raises(ValueError):
            CheckpointModel(interval=1.0, restore_cost=-1.0)


# ---------------------------------------------------------------------------
# Spec grammar v2 (satellite: duplicates + garbled tokens + roundtrip)
# ---------------------------------------------------------------------------
class TestSpecV2:
    def test_duplicate_crash_schedule_raises_naming_the_token(self):
        with pytest.raises(ValueError, match=r"duplicate crash schedule for worker 0"):
            FailureModel.from_spec("0@2.5,0@r3")
        with pytest.raises(ValueError, match=r"'w1@4\.0'"):
            FailureModel.from_spec("1@2.5,w1@4.0")

    def test_duplicate_scalar_keys_raise(self):
        for spec in ("mtbf=1,mtbf=2", "restart=1,restart=2", "seed=1,seed=2",
                     "corr=0.1,corr=0.2", "ckpt=1,ckpt=2"):
            with pytest.raises(ValueError, match="duplicate fault-spec key"):
                FailureModel.from_spec(spec)

    def test_garbled_tokens_name_the_offending_token(self):
        cases = {
            "0@2.5,junk": "'junk'",
            "0@xyz": "'0@xyz'",
            "w@5": "'w@5'",
            "part=0@nope": "'part=0@nope'",
            "part=0": "'part=0'",
            "group=": "'group='",
            "ckpt=1/2/3/4": "'ckpt=1/2/3/4'",
            "frequency=3": "'frequency=3'",
        }
        for spec, token in cases.items():
            with pytest.raises(ValueError, match=token.replace("/", "/")):
                FailureModel.from_spec(spec)

    def test_v2_tokens_parse(self):
        model = FailureModel.from_spec(
            "0@2.5,part=1+2@3.0-5.0,part=3@6.0-inf,group=0+1,group=2+3,"
            "corr=0.8,ckpt=10/0.1/0.5,restart=1.0,seed=7"
        )
        assert model.crash_at_time == {0: 2.5}
        assert model.partitions.cuts == (
            ((1, 2), 3.0, 5.0),
            ((3,), 6.0, float("inf")),
        )
        assert model.groups == ((0, 1), (2, 3))
        assert model.correlation == 0.8
        assert model.checkpoint == CheckpointModel(10.0, 0.1, 0.5)
        assert model.random_state == 7
        # Equality with the constructor form.
        assert model == FailureModel(
            crash_at_time={0: 2.5},
            partitions=PartitionModel(
                cuts=[((1, 2), 3.0, 5.0), ((3,), 6.0, float("inf"))]
            ),
            groups=[[0, 1], [2, 3]],
            correlation=0.8,
            checkpoint=CheckpointModel(10.0, 0.1, 0.5),
            restart_after=1.0,
            random_state=7,
        )

    def test_spec_describe_roundtrip(self):
        spec = "0@2.5,w1@r3,part=2@3.0-5.0,group=0+1,corr=0.5,ckpt=4/0.2/0.3,restart=1.0,seed=9"
        described = FailureModel.from_spec(spec).describe()
        assert described["crash_at_time"] == {"0": 2.5}
        assert described["crash_at_round"] == {"1": 3}
        assert described["groups"] == [[0, 1]]
        assert described["correlation"] == 0.5
        assert described["partitions"] == {
            "cuts": [{"workers": [2], "start": 3.0, "end": 5.0}]
        }
        assert described["checkpoint"] == {
            "interval": 4.0, "write_cost": 0.2, "restore_cost": 0.3
        }
        assert described["restart_after"] == 1.0
        assert described["random_state"] == 9
        json.dumps(described)  # stays JSON-safe

    def test_plain_cut_sequence_is_wrapped(self):
        model = FailureModel(partitions=[((0,), 1.0, 2.0)])
        assert isinstance(model.partitions, PartitionModel)

    def test_scientific_notation_window_bounds(self):
        model = FailureModel.from_spec("part=0@1e-3-5.0,part=1@2.5e-6-1e-5")
        assert model.partitions.cuts == (
            ((0,), 1e-3, 5.0), ((1,), 2.5e-6, 1e-5)
        )

    def test_semantically_bad_values_name_the_token(self):
        # Syntactically parseable values that fail range checks must still
        # point at the offending token, not just the model validation.
        for spec, token in {
            "part=0@5-2": "part=0@5-2",
            "corr=1.5": "corr=1.5",
            "group=0+0": "group=0\\+0",
            "ckpt=0": "ckpt=0",
        }.items():
            with pytest.raises(ValueError, match=token):
                FailureModel.from_spec(spec)


# ---------------------------------------------------------------------------
# Synchronous policies under a partition, both engines
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestPartitionSyncPolicies:
    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_raise_policy_aborts_with_partition_error(
        self, mode, dataset, nofault_trace
    ):
        cluster = SimulatedCluster(
            dataset, 4, faults=_partition_faults(nofault_trace),
            engine=mode, random_state=0,
        )
        with pytest.raises(PartitionError) as err:
            NewtonADMM(lam=1e-3, max_epochs=6, record_accuracy=False).fit(cluster)
        assert err.value.worker_id == 1
        assert math.isfinite(err.value.heals_at)
        # PartitionError is a WorkerLostError: strict-sync abort handling
        # (the CLI's structured reporting) covers both.
        assert isinstance(err.value, WorkerLostError)

    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_stall_policy_waits_out_the_window_bit_identically(
        self, mode, dataset, nofault_trace
    ):
        cluster = SimulatedCluster(
            dataset, 4, faults=_partition_faults(nofault_trace),
            engine=mode, random_state=0,
        )
        trace = NewtonADMM(
            lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
        ).fit(cluster)
        # Partitions lose time, never data: numerics identical to no-fault.
        assert np.array_equal(trace.final_w, nofault_trace.final_w)
        assert trace.final.modelled_time > nofault_trace.final.modelled_time
        assert cluster.clock.category("stall") > 0.0
        kinds = [e["kind"] for e in trace.info["faults"]["events"]]
        assert kinds == ["partition", "heal"]

    def test_stall_times_identical_across_engines(self, dataset, nofault_trace):
        traces = {}
        for mode in ("lockstep", "event"):
            cluster = SimulatedCluster(
                dataset, 4, faults=_partition_faults(nofault_trace),
                engine=mode, random_state=0,
            )
            traces[mode] = NewtonADMM(
                lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
            ).fit(cluster)
        assert np.array_equal(traces["lockstep"].final_w, traces["event"].final_w)
        assert (
            traces["lockstep"].final.modelled_time
            == traces["event"].final.modelled_time
        )

    def test_stall_on_a_never_healing_cut_raises(self, dataset, nofault_trace):
        lo, _ = _window(nofault_trace)
        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(
                partitions=PartitionModel(cuts=[((1,), lo, float("inf"))])
            ),
            random_state=0,
        )
        with pytest.raises(PartitionError, match="no scheduled heal"):
            NewtonADMM(
                lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
            ).fit(cluster)

    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_degrade_policy_excludes_cut_worker_then_rejoins(
        self, mode, dataset, nofault_trace
    ):
        cluster = SimulatedCluster(
            dataset, 4, faults=_partition_faults(nofault_trace),
            engine=mode, random_state=0,
        )
        trace = NewtonADMM(
            lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="degrade"
        ).fit(cluster)
        kinds = [e["kind"] for e in trace.info["faults"]["events"]]
        assert kinds == ["partition", "heal"]
        assert np.isfinite(trace.final.objective)

    def test_unreachable_timeline_segments_on_event_engine(
        self, dataset, nofault_trace
    ):
        cluster = SimulatedCluster(
            dataset, 4, faults=_partition_faults(nofault_trace),
            engine="event", random_state=0,
        )
        NewtonADMM(
            lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
        ).fit(cluster)
        kinds = {s.kind for s in cluster.engine.timeline(1).segments}
        assert "unreachable" in kinds
        assert "down" not in kinds  # the worker never crashed

    def test_stall_override_in_degraded_plan_waits_for_offmember_cut(
        self, dataset
    ):
        # A cut worker excluded from the degraded membership still blocks a
        # per-collective "stall" override: the guard stalls for the heal
        # (instead of the Communicator backstop aborting) and the collective
        # then runs over the membership its buffers were built for.
        from repro.distributed.schedule import (
            Collective,
            RoundPlan,
            execute_plan,
        )

        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(
                partitions=PartitionModel(cuts=[((0,), 0.0, 1.0)])
            ),
            engine="event", random_state=0,
        )
        plan = RoundPlan("degrade-then-stall", on_failure="degrade")
        plan.local("vals", lambda worker, ctx: float(worker.worker_id + 1))
        plan.add(
            Collective(
                "total", "reduce_scalar", lambda ctx: ctx["vals"],
                on_failure="stall",
            )
        )
        plan.returns("total")
        execution = execute_plan(cluster, plan)
        assert execution.result == pytest.approx(2.0 + 3.0 + 4.0)
        assert cluster.clock.category("stall") >= 1.0

    def test_communicator_backstop_raises_across_a_cut(self, dataset):
        # Imperative comm calls (no plan guard) cannot silently cross a cut.
        cluster = SimulatedCluster(
            dataset, 4,
            faults=FailureModel(
                partitions=PartitionModel(cuts=[((2,), 0.0, 1.0)])
            ),
            random_state=0,
        )
        with pytest.raises(PartitionError):
            cluster.comm.allreduce([np.ones(4)] * 4)


# ---------------------------------------------------------------------------
# Inactive v2 models are invisible (the acceptance criterion), both engines
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestInactiveV2ModelsAreInvisible:
    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_sync_bit_identical_with_armed_partition_and_checkpoint(
        self, mode, dataset
    ):
        def run(faults):
            cluster = SimulatedCluster(
                dataset, 4, faults=faults, engine=mode, random_state=0
            )
            return NewtonADMM(
                lam=1e-3, max_epochs=5, record_accuracy=False
            ).fit(cluster)

        plain = run(None)
        armed = run(
            FailureModel(
                partitions=PartitionModel(cuts=[((0,), 1e9, 2e9)]),
                checkpoint=CheckpointModel(interval=1.0, write_cost=0.1,
                                           restore_cost=0.5),
                groups=[[0, 1]],
                correlation=0.9,
            )
        )
        assert np.array_equal(plain.final_w, armed.final_w)
        for a, b in zip(plain.records, armed.records):
            assert a.objective == b.objective
            assert a.modelled_time == b.modelled_time
            assert a.comm_time == b.comm_time
        assert "faults" not in armed.info

    def test_async_bit_identical_with_armed_partition(self, dataset):
        def run(faults):
            cluster = SimulatedCluster(dataset, 4, faults=faults, random_state=0)
            return AsyncNewtonADMM(
                lam=1e-3, max_epochs=8, record_accuracy=False
            ).fit(cluster)

        plain = run(None)
        armed = run(
            FailureModel(
                partitions=PartitionModel(cuts=[((0,), 1e9, 2e9)]),
                checkpoint=CheckpointModel(interval=1.0, restore_cost=0.5),
            )
        )
        assert np.array_equal(plain.final_w, armed.final_w)
        assert plain.final.modelled_time == armed.final.modelled_time


# ---------------------------------------------------------------------------
# Async ride-through: the quorum keeps firing, the healed worker folds once
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestPartitionAsyncRideThrough:
    @pytest.fixture(scope="class")
    def healed_run(self, dataset, nofault_trace):
        lo, hi = _window(nofault_trace, start=0.25, length=0.6)
        faults = FailureModel(
            partitions=PartitionModel(cuts=[((1,), lo, hi)])
        )
        solver = AsyncNewtonADMM(
            lam=1e-3, max_epochs=30, quorum=3, max_staleness=10,
            record_accuracy=False,
        )
        trace = solver.fit(
            SimulatedCluster(dataset, 4, faults=faults, random_state=0)
        )
        return solver, trace, lo, hi

    def test_reaches_target_and_records_partition_events(
        self, healed_run, nofault_trace
    ):
        _, trace, _, _ = healed_run
        target = nofault_trace.final.objective
        assert trace.final.objective <= target
        assert math.isfinite(time_to_objective(trace, target))
        kinds = [e["kind"] for e in trace.info["faults"]["events"]]
        assert kinds.count("partition") == 1 and kinds.count("heal") == 1

    def test_every_arrival_passes_the_staleness_gate_exactly_once(
        self, healed_run
    ):
        solver, _, _, hi = healed_run
        log = solver.staleness_log
        folds = [w for entry in log for w in entry["folded_workers"]]
        # No fire folds the same worker twice, and in total every arrival
        # is folded exactly once — the healed worker's stale payload is
        # replaced on arrival, never summed twice.
        for entry in log:
            assert len(entry["folded_workers"]) == len(set(entry["folded_workers"]))
        assert len(folds) == sum(solver.arrival_counts.values())
        post_heal = [
            entry for entry in log
            if entry["time"] >= hi and 1 in entry["folded_workers"]
        ]
        assert post_heal, "healed worker never folded back in"

    def test_cut_worker_keeps_computing_with_unreachable_timeline(
        self, healed_run, dataset
    ):
        _, trace, lo, hi = healed_run
        rows = trace.info["timelines"]
        cut_row = next(r for r in rows if r["worker_id"] == 1)
        kinds = {seg["kind"] for seg in cut_row["segments"]}
        assert "unreachable" in kinds and "busy" in kinds
        assert cut_row["unreachable"] > 0.0

    def test_crash_while_held_behind_the_cut_drops_the_push(
        self, dataset, nofault_trace
    ):
        # The hold stretches the cycle past the window crash_guard saw: a
        # worker that dies behind the cut must never deliver its payload.
        total = nofault_trace.final.modelled_time
        faults = FailureModel(
            crash_at_time={0: 0.2 * total}, restart_after=0.2 * total,
            partitions=PartitionModel(
                cuts=[((0,), 0.05 * total, 0.6 * total)]
            ),
        )
        solver = AsyncNewtonADMM(
            lam=1e-3, max_epochs=20, quorum=3, record_accuracy=False
        )
        trace = solver.fit(
            SimulatedCluster(dataset, 4, faults=faults, random_state=0)
        )
        kinds = [e["kind"] for e in trace.info["faults"]["events"]]
        assert "crash" in kinds and "restart" in kinds
        # Folds of worker 0 before the cut opens are legitimate; between the
        # cut start and its restart the worker must never be folded — the
        # push it had in the hold died with it.
        cut_start, restart = 0.05 * total, (0.2 + 0.2) * total
        fold_times = [
            entry["time"] for entry in solver.staleness_log
            if 0 in entry["folded_workers"]
        ]
        assert all(t <= cut_start or t >= restart for t in fold_times)
        assert any(t >= restart for t in fold_times), "worker 0 never rejoined"
        assert sum(
            len(s["folded_workers"]) for s in solver.staleness_log
        ) == sum(solver.arrival_counts.values()) - solver.dropped_arrivals

    def test_crash_during_the_delayed_push_window_drops_the_payload(
        self, dataset, nofault_trace
    ):
        # The hold can land the push in [heal, heal + p2p); a crash inside
        # that window must still drop the in-flight payload — the node died
        # mid-transfer, after the link came back.
        total = nofault_trace.final.modelled_time
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        p2p = cluster.network.point_to_point(cluster.dim * 8.0)
        heal = 0.2 * total
        crash = heal + 0.5 * p2p
        faults = FailureModel(
            crash_at_time={0: crash}, restart_after=0.3 * total,
            partitions=PartitionModel(cuts=[((0,), 0.01 * total, heal)]),
        )
        solver = AsyncNewtonADMM(
            lam=1e-3, max_epochs=20, quorum=3, record_accuracy=False
        )
        trace = solver.fit(
            SimulatedCluster(dataset, 4, faults=faults, random_state=0)
        )
        kinds = [e["kind"] for e in trace.info["faults"]["events"]]
        assert "crash" in kinds and "restart" in kinds
        restart = crash + 0.3 * total
        assert not [
            s["time"] for s in solver.staleness_log
            if 0 in s["folded_workers"]
            and 0.01 * total <= s["time"] < restart
        ], "dead node's post-mortem payload entered the consensus sum"

    def test_async_sgd_rides_through_a_healing_cut(self, dataset):
        probe = AsynchronousSGD(lam=1e-3, max_epochs=2, random_state=0).fit(
            SimulatedCluster(dataset, 4, random_state=0)
        )
        total = probe.final.modelled_time
        faults = FailureModel(
            partitions=PartitionModel(cuts=[((0,), 0.3 * total, 0.7 * total)])
        )
        trace = AsynchronousSGD(lam=1e-3, max_epochs=2, random_state=0).fit(
            SimulatedCluster(dataset, 4, faults=faults, random_state=0)
        )
        assert np.isfinite(trace.final.objective)
        kinds = [e["kind"] for e in trace.info["faults"]["events"]]
        assert kinds.count("partition") == 1 and kinds.count("heal") == 1


# ---------------------------------------------------------------------------
# Correlated failures (rack-level blast radius)
# ---------------------------------------------------------------------------
class TestCorrelatedFailures:
    def test_certain_correlation_co_crashes_the_group(self, nofault_trace):
        crash = 0.35 * nofault_trace.final.modelled_time
        inj = FailureModel(
            crash_at_time={0: crash}, groups=[[0, 1]], correlation=1.0
        ).start(4)
        assert inj.is_down(0, crash) and inj.is_down(1, crash)
        assert not inj.is_down(2, crash) and not inj.is_down(3, crash)

    def test_zero_correlation_never_co_crashes(self, nofault_trace):
        crash = 0.35 * nofault_trace.final.modelled_time
        inj = FailureModel(
            crash_at_time={0: crash}, groups=[[0, 1]], correlation=0.0
        ).start(4)
        assert inj.is_down(0, crash) and not inj.is_down(1, crash)

    def test_co_crash_schedule_is_deterministic_and_order_independent(self):
        def make():
            return FailureModel(
                mtbf=10.0, groups=[[0, 1], [2, 3]], correlation=0.5,
                restart_after=1.0, random_state=3,
            ).start(4)

        a, b = make(), make()
        for wid in (3, 2, 1, 0):  # query b in reverse order
            b.first_crash_in(wid, 0.0, 200.0)
        for wid in range(4):
            assert (
                a.first_crash_in(wid, 0.0, 200.0)
                == b.first_crash_in(wid, 0.0, 200.0)
            )

    def test_co_crash_events_are_tagged_with_the_primary(
        self, dataset, nofault_trace
    ):
        crash = 0.35 * nofault_trace.final.modelled_time
        downtime = 0.3 * nofault_trace.final.modelled_time
        trace = AsyncNewtonADMM(
            lam=1e-3, max_epochs=20, quorum=2, record_accuracy=False
        ).fit(
            SimulatedCluster(
                dataset, 4,
                faults=FailureModel(
                    crash_at_time={0: crash}, groups=[[0, 1]],
                    correlation=1.0, restart_after=downtime,
                ),
                random_state=0,
            )
        )
        events = trace.info["faults"]["events"]
        co = [e for e in events if e["kind"] == "co-crash"]
        assert len(co) == 1
        assert co[0]["worker_id"] == 1 and co[0]["with"] == 0

    def test_whole_cluster_group_collapse_raises(self, dataset, nofault_trace):
        crash = 0.35 * nofault_trace.final.modelled_time
        with pytest.raises(WorkerLostError, match="no surviving workers"):
            AsyncNewtonADMM(
                lam=1e-3, max_epochs=20, record_accuracy=False
            ).fit(
                SimulatedCluster(
                    dataset, 4,
                    faults=FailureModel(
                        crash_at_time={0: crash},
                        groups=[[0, 1, 2, 3]],
                        correlation=1.0,
                    ),
                    random_state=0,
                )
            )

    def test_group_validation(self):
        with pytest.raises(ValueError):
            FailureModel(groups=[[0]])
        with pytest.raises(ValueError):
            FailureModel(groups=[[0, -1]])
        with pytest.raises(ValueError):
            FailureModel(groups=[[0, 1]], correlation=1.5)


# ---------------------------------------------------------------------------
# Checkpoint-cost restarts: "stall" is no longer free
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestCheckpointRecovery:
    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_stall_charges_restore_plus_replay(self, mode, dataset, nofault_trace):
        total = nofault_trace.final.modelled_time
        crash, downtime = 0.35 * total, 0.3 * total

        def run(checkpoint):
            cluster = SimulatedCluster(
                dataset, 4,
                faults=FailureModel(
                    crash_at_time={1: crash}, restart_after=downtime,
                    checkpoint=checkpoint,
                ),
                engine=mode, random_state=0,
            )
            return NewtonADMM(
                lam=1e-3, max_epochs=6, record_accuracy=False,
                on_failure="stall",
            ).fit(cluster)

        free = run(None)
        # Single durable checkpoint at t=0: replay the whole prefix.
        ckpt = CheckpointModel(
            interval=10.0 * total, write_cost=0.0, restore_cost=0.2 * total
        )
        paid = run(ckpt)
        assert np.array_equal(paid.final_w, free.final_w)
        extra = paid.final.modelled_time - free.final.modelled_time
        assert extra >= 0.99 * (0.2 * total + crash)
        kinds = [e["kind"] for e in paid.info["faults"]["events"]]
        assert kinds == ["crash", "restart", "restore"]

    def test_recovery_identical_across_engines(self, dataset, nofault_trace):
        total = nofault_trace.final.modelled_time
        traces = {}
        for mode in ("lockstep", "event"):
            cluster = SimulatedCluster(
                dataset, 4,
                faults=FailureModel(
                    crash_at_time={1: 0.35 * total},
                    restart_after=0.3 * total,
                    checkpoint=CheckpointModel(
                        interval=0.25 * total, restore_cost=0.1 * total
                    ),
                ),
                engine=mode, random_state=0,
            )
            traces[mode] = NewtonADMM(
                lam=1e-3, max_epochs=6, record_accuracy=False,
                on_failure="stall",
            ).fit(cluster)
        assert (
            traces["lockstep"].final.modelled_time
            == traces["event"].final.modelled_time
        )
        assert np.array_equal(
            traces["lockstep"].final_w, traces["event"].final_w
        )

    def test_async_revival_pays_recovery_before_next_cycle(
        self, dataset, nofault_trace
    ):
        total = nofault_trace.final.modelled_time
        crash, downtime = 0.3 * total, 0.2 * total

        def run(checkpoint):
            cluster = SimulatedCluster(
                dataset, 4,
                faults=FailureModel(
                    crash_at_time={1: crash}, restart_after=downtime,
                    checkpoint=checkpoint,
                ),
                random_state=0,
            )
            trace = AsyncNewtonADMM(
                lam=1e-3, max_epochs=20, quorum=3, record_accuracy=False
            ).fit(cluster)
            return trace

        free = run(None)
        paid = run(
            CheckpointModel(interval=10.0 * total, restore_cost=0.2 * total)
        )
        kinds = [e["kind"] for e in paid.info["faults"]["events"]]
        assert "restore" in kinds
        # The restore segment lands on the revived worker's timeline.
        row = next(r for r in paid.info["timelines"] if r["worker_id"] == 1)
        labels = {seg["label"] for seg in row["segments"]}
        assert "restore" in labels
        assert np.isfinite(paid.final.objective) and np.isfinite(
            free.final.objective
        )


# ---------------------------------------------------------------------------
# Gantt markers for the new event kinds
# ---------------------------------------------------------------------------
class TestGanttPartitionMarkers:
    @pytest.fixture(scope="class")
    def partitioned_trace(self, dataset, nofault_trace):
        cluster = SimulatedCluster(
            dataset, 4, faults=_partition_faults(nofault_trace),
            engine="event", random_state=0,
        )
        return NewtonADMM(
            lam=1e-3, max_epochs=6, record_accuracy=False, on_failure="stall"
        ).fit(cluster)

    def test_cut_heal_markers_and_unreachable_fill(self, partitioned_trace):
        art = plot_gantt(partitioned_trace, width=60)
        assert "(" in art and ")" in art
        assert "= unreachable" in art     # legend
        row = next(
            line for line in art.splitlines() if line.startswith("w1")
        )
        assert "=" in row                  # unreachable fill on the cut row

    def test_markers_only_on_the_cut_workers_row(self, partitioned_trace):
        art = plot_gantt(partitioned_trace, width=60)
        rows = {
            line.split("|")[0].strip(): line
            for line in art.splitlines()
            if line.startswith("w")
        }
        assert all("(" not in rows[f"w{i}"] for i in (0, 2, 3))
