"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets.synthetic import (
    make_binary_margin,
    make_multiclass_gaussian,
    make_sparse_multiclass,
)


class TestMulticlassGaussian:
    def test_shapes_and_classes(self):
        ds = make_multiclass_gaussian(200, 10, 4, random_state=0)
        assert ds.X.shape == (200, 10)
        assert ds.n_classes == 4
        assert set(np.unique(ds.y)).issubset(set(range(4)))

    def test_deterministic(self):
        a = make_multiclass_gaussian(50, 5, 3, random_state=7)
        b = make_multiclass_gaussian(50, 5, 3, random_state=7)
        np.testing.assert_allclose(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = make_multiclass_gaussian(50, 5, 3, random_state=1)
        b = make_multiclass_gaussian(50, 5, 3, random_state=2)
        assert not np.allclose(a.X, b.X)

    def test_condition_number_controls_scale_spread(self):
        well = make_multiclass_gaussian(
            2000, 20, 3, condition_number=1.0, class_separation=0.0, random_state=0
        )
        ill = make_multiclass_gaussian(
            2000, 20, 3, condition_number=1e4, class_separation=0.0, random_state=0
        )
        spread_well = well.X.std(axis=0).max() / well.X.std(axis=0).min()
        spread_ill = ill.X.std(axis=0).max() / ill.X.std(axis=0).min()
        assert spread_ill > 10 * spread_well

    def test_label_noise_zero_gives_separable_ish_labels(self):
        ds = make_multiclass_gaussian(
            500, 10, 3, class_separation=8.0, label_noise=0.0, random_state=0
        )
        # With huge separation and no noise, class means should be far apart.
        means = np.array([ds.X[ds.y == c].mean(axis=0) for c in range(3)])
        dists = np.linalg.norm(means[0] - means[1])
        assert dists > 1.0

    def test_invalid_classes(self):
        with pytest.raises(ValueError):
            make_multiclass_gaussian(10, 5, 1)

    def test_invalid_label_noise(self):
        with pytest.raises(ValueError):
            make_multiclass_gaussian(10, 5, 3, label_noise=1.5)

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            make_multiclass_gaussian(10, 5, 3, correlation=1.0)

    def test_invalid_condition_number(self):
        with pytest.raises(ValueError):
            make_multiclass_gaussian(10, 5, 3, condition_number=0.5)

    def test_metadata_recorded(self):
        ds = make_multiclass_gaussian(20, 5, 3, random_state=0)
        assert ds.metadata["generator"] == "make_multiclass_gaussian"


class TestBinaryMargin:
    def test_two_classes(self):
        ds = make_binary_margin(300, 10, random_state=0)
        assert ds.n_classes == 2
        assert set(np.unique(ds.y)) == {0, 1}

    def test_margin_increases_separability(self):
        lo = make_binary_margin(3000, 10, margin=0.1, label_noise=0.0, random_state=0)
        hi = make_binary_margin(3000, 10, margin=5.0, label_noise=0.0, random_state=0)

        def best_linear_accuracy(ds):
            # crude least-squares separator
            y = 2.0 * ds.y - 1.0
            w, *_ = np.linalg.lstsq(ds.X, y, rcond=None)
            return np.mean((ds.X @ w > 0) == (y > 0))

        assert best_linear_accuracy(hi) > best_linear_accuracy(lo) + 0.1

    def test_deterministic(self):
        a = make_binary_margin(50, 4, random_state=3)
        b = make_binary_margin(50, 4, random_state=3)
        np.testing.assert_allclose(a.X, b.X)

    def test_both_classes_present(self):
        ds = make_binary_margin(500, 10, random_state=0)
        counts = ds.class_counts()
        assert counts.min() > 50


class TestSparseMulticlass:
    def test_sparse_output(self):
        ds = make_sparse_multiclass(100, 500, 5, density=0.02, random_state=0)
        assert sp.issparse(ds.X)
        assert ds.X.shape == (100, 500)
        assert ds.n_classes == 5

    def test_density_respected(self):
        ds = make_sparse_multiclass(200, 1000, 4, density=0.01, random_state=0)
        actual_density = ds.X.nnz / (200 * 1000)
        assert actual_density <= 0.015
        assert actual_density >= 0.003

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            make_sparse_multiclass(10, 100, 3, density=0.0)

    def test_deterministic(self):
        a = make_sparse_multiclass(50, 200, 3, random_state=9)
        b = make_sparse_multiclass(50, 200, 3, random_state=9)
        assert (a.X != b.X).nnz == 0
        np.testing.assert_array_equal(a.y, b.y)

    def test_all_classes_present(self):
        ds = make_sparse_multiclass(400, 500, 5, random_state=0)
        assert ds.class_counts().min() > 0

    def test_signal_is_learnable(self):
        # A least-squares one-vs-rest readout should beat chance comfortably.
        ds = make_sparse_multiclass(
            400, 300, 3, density=0.05, label_noise=0.0, random_state=0
        )
        X = np.asarray(ds.X.todense())
        Y = np.eye(3)[ds.y]
        W, *_ = np.linalg.lstsq(X, Y, rcond=None)
        acc = np.mean(np.argmax(X @ W, axis=1) == ds.y)
        assert acc > 0.55
