"""Tests for the discrete-event engine: timelines, barriers, the event queue,
overlap, lock-step equivalence, and communication-round invariants."""

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.baselines.dane import InexactDANE
from repro.baselines.giant import GIANT
from repro.baselines.sync_sgd import SynchronousSGD
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.engine import EventEngine
from repro.distributed.stragglers import StragglerModel
from repro.harness.plotting import plot_gantt
from repro.metrics.timeline import (
    TimelineSegment,
    WorkerTimeline,
    timeline_summary,
    timelines_from_dicts,
)


@pytest.fixture(scope="module")
def dataset():
    return make_multiclass_gaussian(240, 10, 3, class_separation=3.0, random_state=0)


class TestWorkerTimeline:
    def test_advance_appends_segments(self):
        tl = WorkerTimeline(0)
        tl.advance(1.0, "busy", "work")
        tl.advance(0.5, "comm", "push")
        assert tl.t == 1.5
        assert [s.kind for s in tl.segments] == ["busy", "comm"]
        assert tl.totals()["busy"] == 1.0
        assert tl.utilization() == pytest.approx(1.0 / 1.5)

    def test_zero_advance_records_nothing(self):
        tl = WorkerTimeline(0)
        tl.advance(0.0)
        assert tl.segments == []

    def test_wait_until_past_is_noop(self):
        tl = WorkerTimeline(0)
        tl.advance(2.0)
        tl.wait_until(1.0)
        assert tl.t == 2.0 and len(tl.segments) == 1

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            WorkerTimeline(0).advance(-1.0)
        with pytest.raises(ValueError):
            TimelineSegment(1.0, 0.5, "busy")
        with pytest.raises(ValueError):
            TimelineSegment(0.0, 1.0, "sleeping")

    def test_roundtrip_through_dicts(self):
        tl = WorkerTimeline(3)
        tl.advance(1.0, "busy")
        tl.wait_until(1.5, "barrier")
        tl.post_background(0.5, 2.0, "ibcast")
        (back,) = timelines_from_dicts([tl.to_dict()])
        assert back.worker_id == 3
        assert back.t == tl.t
        assert [s.to_dict() for s in back.segments] == [
            s.to_dict() for s in tl.segments
        ]
        assert back.background[0].end == 2.5

    def test_summary_rows(self):
        tl = WorkerTimeline(0)
        tl.advance(1.0, "busy")
        (row,) = timeline_summary([tl])
        assert row["worker_id"] == 0
        assert row["busy"] == 1.0
        assert row["utilization"] == 1.0


class TestEventEngine:
    def test_barrier_waits_fast_workers(self):
        engine = EventEngine(3)
        engine.compute(0, 1.0)
        engine.compute(1, 4.0)
        t = engine.barrier()
        assert t == 4.0
        assert all(tl.t == 4.0 for tl in engine.timelines)
        # Fast workers got wait segments; the slow one did not.
        assert engine.timelines[0].totals()["wait"] == 3.0
        assert engine.timelines[1].totals()["wait"] == 0.0
        assert engine.timelines[2].totals()["wait"] == 4.0

    def test_run_round_charges_clock_max(self):
        engine = EventEngine(2)
        engine.run_round({0: 1.0, 1: 3.0})
        assert engine.now == 3.0
        assert engine.clock.category("compute") == 3.0

    def test_collective_charges_everyone(self):
        engine = EventEngine(2)
        engine.run_round({0: 1.0, 1: 2.0})
        engine.collective(0.5)
        assert engine.now == 2.5
        assert engine.clock.category("communication") == 0.5
        assert all(tl.totals()["comm"] == 0.5 for tl in engine.timelines)

    def test_event_queue_orders_by_time_then_post_order(self):
        engine = EventEngine(3)
        engine.post(2, 1.0, "late")
        engine.post(0, 0.5, "early")
        engine.post(1, 0.5, "tie")  # same time as "early", posted later
        assert engine.pop().payload == "early"
        assert engine.pop().payload == "tie"
        assert engine.pop().payload == "late"
        with pytest.raises(RuntimeError):
            engine.pop()

    def test_post_does_not_advance_worker(self):
        engine = EventEngine(2)
        engine.compute(0, 1.0)
        event = engine.post(0, 0.25)
        assert event.time == 1.25
        assert engine.time_of(0) == 1.0

    def test_advance_global_to_splits_categories(self):
        engine = EventEngine(1)
        engine.advance_global_to(10.0, comm_seconds=4.0)
        assert engine.now == 10.0
        assert engine.clock.category("compute") == 6.0
        assert engine.clock.category("communication") == 4.0
        # Going backwards is a no-op.
        engine.advance_global_to(5.0)
        assert engine.now == 10.0

    def test_background_collective_overlaps_compute(self):
        engine = EventEngine(2)
        engine.run_round({0: 1.0, 1: 1.0})
        completion = engine.background_collective(2.0)
        assert completion == 3.0
        assert engine.background_pending
        # 1.5s of compute hides 1.5s of the transfer...
        engine.run_round({0: 1.5, 1: 1.5})
        engine.join_background()
        # ...so only the 0.5s remainder is charged as communication.
        assert engine.now == 3.0
        assert engine.clock.category("communication") == 0.5
        assert not engine.background_pending

    def test_blocking_collective_joins_background_first(self):
        engine = EventEngine(2)
        engine.background_collective(2.0)
        engine.collective(1.0)
        assert engine.now == 3.0

    def test_fully_hidden_background_costs_nothing(self):
        engine = EventEngine(1)
        engine.background_collective(1.0)
        engine.run_round({0: 5.0})
        engine.join_background()
        assert engine.clock.category("communication") == 0.0
        assert engine.now == 5.0

    def test_reset(self):
        engine = EventEngine(2)
        engine.run_round({0: 1.0, 1: 1.0})
        engine.post(0, 1.0)
        engine.reset()
        assert engine.n_pending == 0
        assert all(not tl.segments for tl in engine.timelines)

    def test_validation(self):
        with pytest.raises(ValueError):
            EventEngine(0)
        engine = EventEngine(2)
        with pytest.raises(ValueError):
            engine.compute(5, 1.0)
        with pytest.raises(ValueError):
            engine.post(0, -1.0)
        with pytest.raises(ValueError):
            engine.barrier([])


def _run_pair(solver_factory, dataset, *, straggler=None, n_workers=4, seed=0):
    traces = {}
    for mode in ("lockstep", "event"):
        strag = None
        if straggler is not None:
            strag = StragglerModel(**straggler)
        cluster = SimulatedCluster(
            dataset, n_workers, straggler=strag, engine=mode, random_state=seed
        )
        traces[mode] = solver_factory().fit(cluster)
    return traces["lockstep"], traces["event"]


class TestEngineEquivalence:
    """The acceptance bar: synchronous solvers produce bit-identical iterates
    and identical modelled clock/round totals on both execution paths."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: NewtonADMM(lam=1e-3, max_epochs=6),
            lambda: GIANT(lam=1e-3, max_epochs=6),
            lambda: SynchronousSGD(lam=1e-3, max_epochs=3, step_size=0.2),
            lambda: InexactDANE(lam=1e-3, max_epochs=2),
        ],
        ids=["newton_admm", "giant", "sync_sgd", "inexact_dane"],
    )
    def test_bit_identical_iterates_and_times(self, factory, dataset):
        lockstep, event = _run_pair(factory, dataset)
        assert np.array_equal(lockstep.final_w, event.final_w)
        assert len(lockstep.records) == len(event.records)
        for a, b in zip(lockstep.records, event.records):
            assert a.objective == b.objective
            assert a.modelled_time == b.modelled_time
            assert a.compute_time == b.compute_time
            assert a.comm_time == b.comm_time
            assert a.comm_rounds == b.comm_rounds

    def test_equivalence_holds_under_stragglers(self, dataset):
        lockstep, event = _run_pair(
            lambda: NewtonADMM(lam=1e-3, max_epochs=4),
            dataset,
            straggler=dict(slowdown=6.0, persistent_stragglers=[1], jitter=0.1),
        )
        assert np.array_equal(lockstep.final_w, event.final_w)
        assert lockstep.final.modelled_time == event.final.modelled_time

    def test_event_mode_records_timelines(self, dataset):
        _, event = _run_pair(lambda: NewtonADMM(lam=1e-3, max_epochs=3), dataset)
        timelines = event.info["timelines"]
        assert len(timelines) == 4
        assert all(tl["total"] > 0 for tl in timelines)
        summary = event.info["timeline_summary"]
        assert all(0 < row["utilization"] <= 1.0 for row in summary)

    def test_straggler_peers_wait_in_timelines(self, dataset):
        _, event = _run_pair(
            lambda: NewtonADMM(lam=1e-3, max_epochs=3),
            dataset,
            straggler=dict(slowdown=10.0, persistent_stragglers=[0]),
        )
        by_id = {tl["worker_id"]: tl for tl in event.info["timelines"]}
        # The straggler barely waits; its peers wait out its slow rounds.
        assert by_id[0]["wait"] < by_id[1]["wait"]
        assert by_id[1]["wait"] > by_id[1]["busy"]


class TestCommunicationRoundInvariants:
    """The paper's systems claim, asserted on both engines: Newton-ADMM
    synchronizes once per iteration, GIANT three times."""

    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_newton_admm_one_round_per_iteration(self, mode, dataset):
        epochs = 7
        cluster = SimulatedCluster(dataset, 4, engine=mode, random_state=0)
        trace = NewtonADMM(lam=1e-3, max_epochs=epochs).fit(cluster)
        assert cluster.comm.log.n_rounds == epochs
        assert trace.final.comm_rounds == epochs

    @pytest.mark.parametrize("mode", ["lockstep", "event"])
    def test_giant_three_rounds_per_iteration(self, mode, dataset):
        epochs = 7
        cluster = SimulatedCluster(dataset, 4, engine=mode, random_state=0)
        trace = GIANT(lam=1e-3, max_epochs=epochs).fit(cluster)
        assert cluster.comm.log.n_rounds == 3 * epochs
        assert trace.final.comm_rounds == 3 * epochs


class TestStragglerKeying:
    def test_persistent_straggler_hits_named_worker_on_subsets(self, dataset):
        # Regression: factors used to be applied positionally, so on a subset
        # round [w2, w3] a persistent straggler with id 2 slowed the *first*
        # subset entry only by accident and id 0 never slowed anything.
        cluster = SimulatedCluster(
            dataset,
            4,
            straggler=StragglerModel(slowdown=50.0, persistent_stragglers=[3]),
            random_state=0,
        )
        subset = [cluster.workers[1], cluster.workers[3]]
        before = cluster.clock.time
        cluster.map_workers(lambda w: w.objective.value(np.zeros(cluster.dim)),
                            workers=subset)
        slowed = cluster.clock.time - before

        cluster2 = SimulatedCluster(
            dataset,
            4,
            straggler=StragglerModel(slowdown=50.0, persistent_stragglers=[0]),
            random_state=0,
        )
        subset2 = [cluster2.workers[1], cluster2.workers[3]]
        before2 = cluster2.clock.time
        cluster2.map_workers(lambda w: w.objective.value(np.zeros(cluster2.dim)),
                             workers=subset2)
        unslowed = cluster2.clock.time - before2
        # Straggler 3 participates in the first subset and dominates its
        # round; straggler 0 does not participate in the second.
        assert slowed > 10.0 * unslowed

    def test_factors_for_full_cluster_matches_sample_factors(self):
        a = StragglerModel(probability=0.5, jitter=0.2, random_state=7)
        b = StragglerModel(probability=0.5, jitter=0.2, random_state=7)
        np.testing.assert_allclose(
            a.factors_for(range(4), 4), b.sample_factors(4)
        )

    def test_factors_for_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            StragglerModel().factors_for([4], 4)

    def test_factors_for_records_only_applied_factors(self):
        # Async schedules query one worker per cycle; the history must hold
        # the delivered factors, not a full phantom round per query — and a
        # subset query counts as a *draw*, not a synchronization round.
        model = StragglerModel(slowdown=4.0, persistent_stragglers=[0])
        for _ in range(5):
            model.factors_for([1], 4)
        summary = model.summary()
        assert summary["rounds"] == 0
        assert summary["draws"] == 5
        assert summary["max_factor"] == pytest.approx(1.0)  # worker 1 never slowed
        # Mixed-size history (subset + full rounds) still summarizes.
        model.sample_factors(4)
        assert model.summary()["max_factor"] == pytest.approx(4.0)
        assert model.summary()["rounds"] == 1
        assert model.summary()["draws"] == 6

    def test_round_accounting_on_async_trace(self):
        # The bug this pins: async runs (one factors_for query per worker
        # cycle) used to report wildly inflated summary()["rounds"] relative
        # to the synchronization rounds that actually happened.  Rounds now
        # count only full-membership queries; per-cycle draws land in
        # "draws".
        from repro.admm.async_newton_admm import AsyncNewtonADMM
        from repro.datasets.synthetic import make_multiclass_gaussian

        ds = make_multiclass_gaussian(
            240, 10, 3, class_separation=3.0, random_state=0
        )
        model = StragglerModel(jitter=0.2, random_state=5)
        cluster = SimulatedCluster(ds, 4, straggler=model, random_state=0)
        AsyncNewtonADMM(
            lam=1e-3, max_epochs=6, quorum=3, record_accuracy=False
        ).fit(cluster)
        summary = model.summary()
        assert summary["rounds"] == 0           # no full barrier ever formed
        assert summary["draws"] > 6             # one per worker cycle
        assert model.n_draws == summary["draws"]


class TestGanttExport:
    def test_plot_from_timelines_and_dicts(self):
        engine = EventEngine(2)
        engine.run_round({0: 1.0, 1: 3.0})
        engine.collective(0.5)
        art = plot_gantt(engine.timelines, width=24, title="round")
        assert "round" in art and "w0" in art and "w1" in art
        assert "#" in art and "~" in art and "." in art
        # Re-render from the serialized form used in traces.
        rows = [tl.to_dict() for tl in engine.timelines]
        assert plot_gantt(rows, width=24).count("|") >= 4

    def test_background_lane(self):
        engine = EventEngine(1)
        engine.compute(0, 1.0)
        engine.background_collective(1.0)
        art = plot_gantt(engine.timelines, width=20)
        assert "(background)" in art and "-" in art

    def test_empty_timelines_rejected(self):
        with pytest.raises(ValueError):
            plot_gantt([])
