"""Tests for dataset sharding (consensus partitioning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.base import ClassificationDataset
from repro.datasets.sharding import (
    shard_contiguous,
    shard_dataset,
    shard_round_robin,
    shard_stratified,
)


def tagged_dataset(n=120, c=4, seed=0):
    """Dataset whose last feature is the row id, so shards can be traced."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, 3))
    X = np.hstack([X, np.arange(n)[:, None].astype(float)])
    y = rng.integers(0, c, size=n)
    y[:c] = np.arange(c)
    return ClassificationDataset(X=X, y=y, n_classes=c)


def row_ids(shard):
    return set(shard.X[:, -1].astype(int).tolist())


class TestPartitionInvariants:
    @pytest.mark.parametrize("strategy", ["contiguous", "round_robin", "stratified"])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 8])
    def test_partition_is_exact(self, strategy, n_shards):
        ds = tagged_dataset()
        shards = shard_dataset(ds, n_shards, strategy=strategy, random_state=0)
        assert len(shards) == n_shards
        all_ids = [row_ids(s) for s in shards]
        union = set().union(*all_ids)
        assert union == set(range(ds.n_samples))
        total = sum(len(ids) for ids in all_ids)
        assert total == ds.n_samples  # disjoint

    @pytest.mark.parametrize("strategy", ["contiguous", "round_robin", "stratified"])
    def test_balanced_sizes(self, strategy):
        ds = tagged_dataset(n=100)
        shards = shard_dataset(ds, 4, strategy=strategy, random_state=0)
        sizes = [s.n_samples for s in shards]
        assert max(sizes) - min(sizes) <= ds.n_classes

    def test_stratified_every_shard_sees_every_class(self):
        ds = tagged_dataset(n=400, c=4)
        shards = shard_stratified(ds, 4, random_state=0)
        for s in shards:
            assert set(np.unique(s.y)) == set(range(4))

    def test_contiguous_order_preserved(self):
        ds = tagged_dataset(n=40)
        shards = shard_contiguous(ds, 4)
        for i, s in enumerate(shards):
            ids = sorted(row_ids(s))
            assert ids == list(range(i * 10, (i + 1) * 10))

    def test_round_robin_assignment(self):
        ds = tagged_dataset(n=20)
        shards = shard_round_robin(ds, 4)
        assert row_ids(shards[0]) == set(range(0, 20, 4))

    def test_single_shard_is_whole_dataset(self):
        ds = tagged_dataset(n=30)
        (shard,) = shard_dataset(ds, 1)
        assert shard.n_samples == 30


class TestErrors:
    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_contiguous(tagged_dataset(), 0)

    def test_more_shards_than_samples_rejected(self):
        with pytest.raises(ValueError):
            shard_contiguous(tagged_dataset(n=5), 10)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            shard_dataset(tagged_dataset(), 2, strategy="zigzag")

    def test_stratified_deterministic_given_seed(self):
        ds = tagged_dataset(n=100)
        a = shard_stratified(ds, 3, random_state=5)
        b = shard_stratified(ds, 3, random_state=5)
        for s1, s2 in zip(a, b):
            assert row_ids(s1) == row_ids(s2)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=200),
        n_shards=st.integers(min_value=1, max_value=8),
        strategy=st.sampled_from(["contiguous", "round_robin", "stratified"]),
    )
    def test_partition_property(self, n, n_shards, strategy):
        n_shards = min(n_shards, n)
        ds = tagged_dataset(n=n, c=3, seed=1)
        shards = shard_dataset(ds, n_shards, strategy=strategy, random_state=0)
        union = set().union(*(row_ids(s) for s in shards))
        assert union == set(range(n))
        assert sum(s.n_samples for s in shards) == n
