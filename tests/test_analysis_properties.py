"""Differential property tests: static verifier vs. the runtime guard.

The static plan verifier (:func:`repro.analysis.verify_plan`) claims to
answer the same question as trial execution: *does this schedule respect the
executor's contracts?*  This suite holds it to that claim on randomly
generated plans:

- on every generated plan — legal by construction, or mutated into possible
  illegality — the static verdict matches whether ``execute_plan`` raises
  ``ScheduleError`` (the in-flight guard is the runtime oracle);
- every plan the verifier passes executes with its declared round and
  collective counts;
- ``propose_overlap(verify="static")`` reaches the same accept/reject
  decisions — and the same rewritten plan — as trial execution;
- ``propose_hoist`` rewrites stay statically legal and executable.

Mutations are applied to top-level steps only: mutating a step inside a
``Repeat`` body re-issues the same collective while a previous issue may be
in flight, which is a different executor contract than the one the verifier
models round-by-round.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from plan_grammar import round_plans  # noqa: E402

from repro.analysis import verify_plan  # noqa: E402
from repro.datasets.synthetic import make_multiclass_gaussian  # noqa: E402
from repro.distributed.autotune import propose_hoist, propose_overlap  # noqa: E402
from repro.distributed.cluster import SimulatedCluster  # noqa: E402
from repro.distributed.schedule import (  # noqa: E402
    Collective,
    Join,
    RoundPlan,
    ScheduleError,
    execute_plan,
)

BOUNDED = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

_DATASET = make_multiclass_gaussian(120, 6, 3, class_separation=2.0, random_state=0)


def _cluster() -> SimulatedCluster:
    return SimulatedCluster(_DATASET, 4, engine="event", random_state=0)


# ---------------------------------------------------------------------------
# Mutations: possibly-illegal variants of legal plans (top-level steps only)
# ---------------------------------------------------------------------------
@st.composite
def mutated_plans(draw) -> RoundPlan:
    plan = draw(round_plans())
    mutation = draw(
        st.sampled_from(("force_overlap", "drop_join", "extra_join", "noop"))
    )
    if mutation == "force_overlap":
        targets = [
            s
            for s in plan.steps
            if isinstance(s, Collective)
            and not s.overlap
            and s.op != "reduce_scalar"
            and not s.joint_with_previous
        ]
        if targets:
            target = targets[draw(st.integers(0, len(targets) - 1))]
            target.overlap = True
    elif mutation == "drop_join":
        joins = [i for i, s in enumerate(plan.steps) if isinstance(s, Join)]
        if joins:
            plan.steps.pop(joins[draw(st.integers(0, len(joins) - 1))])
    elif mutation == "extra_join":
        index = draw(st.integers(0, len(plan.steps)))
        plan.steps.insert(index, Join())
    return plan


# ---------------------------------------------------------------------------
# The differential contract
# ---------------------------------------------------------------------------
@BOUNDED
@given(plan=mutated_plans())
def test_static_verdict_matches_runtime_guard(plan):
    report = verify_plan(plan)
    try:
        execution = execute_plan(_cluster(), plan)
        runtime_ok = True
    except ScheduleError:
        runtime_ok = False
        execution = None
    assert report.ok == runtime_ok, (
        f"static={report.ok} runtime={runtime_ok}: {report.reason()}"
    )
    if execution is not None:
        assert execution.rounds == plan.declared_rounds


@BOUNDED
@given(plan=round_plans())
def test_verified_plans_execute_with_declared_counts(plan):
    report = verify_plan(plan)
    assert report.ok, report.reason()
    if report.rounds is not None:
        assert report.rounds == plan.declared_rounds
    execution = execute_plan(_cluster(), plan)
    assert execution.rounds == plan.declared_rounds
    assert execution.collectives == plan.declared_collectives


@BOUNDED
@given(plan=round_plans())
def test_generated_plans_have_exact_footprints(plan):
    # The differential suite is only as strong as the effect model: every
    # step built from the grammar's thunks must infer an exact footprint.
    report = verify_plan(plan)
    assert all(entry["exact"] for entry in report.step_effects)


# ---------------------------------------------------------------------------
# Static proposer == trial-execution proposer
# ---------------------------------------------------------------------------
@BOUNDED
@given(plan=mutated_plans())
def test_static_and_executed_overlap_proposals_agree(plan):
    if not verify_plan(plan).ok:
        return  # the proposer contract starts from a legal plan
    static = propose_overlap(plan, verify="static")
    executed = propose_overlap(plan, verify_on=_cluster(), verify="execute")
    assert [(c["name"], c["status"]) for c in static.candidates] == [
        (c["name"], c["status"]) for c in executed.candidates
    ]
    assert static.proposed.signature() == executed.proposed.signature()


@BOUNDED
@given(plan=round_plans())
def test_hoist_rewrites_stay_legal_and_executable(plan):
    proposal = propose_hoist(plan)
    report = verify_plan(proposal.proposed)
    assert report.ok, report.reason()
    execution = execute_plan(_cluster(), proposal.proposed)
    assert execution.rounds == plan.declared_rounds
    assert execution.collectives == plan.declared_collectives
