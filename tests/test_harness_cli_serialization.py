"""Tests for trace serialization, ASCII plotting, and the ``python -m repro`` CLI."""

import json
import math

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.baselines.giant import GIANT
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.harness.cli import EXPERIMENT_REGISTRY, build_parser, main
from repro.harness.plotting import ascii_line_plot, plot_scaling, plot_traces
from repro.harness.serialization import (
    load_rows_csv,
    load_trace,
    save_experiment_result,
    save_rows_csv,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.metrics.traces import RunTrace


@pytest.fixture(scope="module")
def traces():
    dataset = make_multiclass_gaussian(
        n_samples=200, n_features=8, n_classes=3, random_state=0, name="serde"
    )
    out = {}
    for name, solver in (
        ("newton_admm", NewtonADMM(lam=1e-3, max_epochs=4)),
        ("giant", GIANT(lam=1e-3, max_epochs=4)),
    ):
        cluster = SimulatedCluster(dataset, 2, random_state=0)
        out[name] = solver.fit(cluster)
    return out


class TestTraceSerialization:
    def test_round_trip_preserves_records(self, traces):
        trace = traces["newton_admm"]
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.method == trace.method
        assert restored.n_epochs == trace.n_epochs
        np.testing.assert_allclose(restored.objectives(), trace.objectives())
        np.testing.assert_allclose(
            restored.times("modelled"), trace.times("modelled")
        )

    def test_round_trip_handles_nan_and_inf(self):
        trace = RunTrace(method="m", dataset="d", n_workers=1)
        from repro.metrics.traces import EpochRecord

        trace.records.append(
            EpochRecord(epoch=1, objective=1.0, grad_norm=float("nan"),
                        train_accuracy=float("inf"))
        )
        restored = trace_from_dict(trace_to_dict(trace))
        assert math.isnan(restored.records[0].grad_norm)
        assert math.isinf(restored.records[0].train_accuracy)

    def test_serialized_dict_is_json_dumpable(self, traces):
        payload = trace_to_dict(traces["giant"], include_weights=True)
        text = json.dumps(payload)
        assert "giant" in text

    def test_save_and_load_trace_file(self, traces, tmp_path):
        path = save_trace(traces["newton_admm"], tmp_path / "sub" / "trace.json",
                          include_weights=True)
        restored = load_trace(path)
        assert restored.final.objective == pytest.approx(
            traces["newton_admm"].final.objective
        )
        np.testing.assert_allclose(restored.final_w, traces["newton_admm"].final_w)

    def test_rows_csv_round_trip(self, tmp_path):
        rows = [
            {"method": "newton_admm", "workers": 4, "time": 1.25},
            {"method": "giant", "workers": 4, "time": 2.5},
        ]
        path = save_rows_csv(rows, tmp_path / "rows.csv")
        restored = load_rows_csv(path)
        assert len(restored) == 2
        assert restored[0]["method"] == "newton_admm"
        assert float(restored[1]["time"]) == 2.5

    def test_save_experiment_result_writes_artifacts(self, traces, tmp_path):
        result = {
            "rows": [{"method": k, "objective": v.final.objective} for k, v in traces.items()],
            "report": "a report",
            "traces": traces,
        }
        written = save_experiment_result(result, tmp_path, name="demo")
        assert (tmp_path / "demo_rows.json").exists()
        assert (tmp_path / "demo_rows.csv").exists()
        assert (tmp_path / "demo_report.txt").read_text().startswith("a report")
        assert any(k.startswith("trace_") for k in written)

    def test_save_experiment_result_nested_traces(self, traces, tmp_path):
        result = {"rows": [], "traces": {"mnist_like": traces}}
        written = save_experiment_result(result, tmp_path, name="nested")
        assert any("mnist_like_newton_admm" in k for k in written)


class TestAsciiPlotting:
    def test_basic_plot_contains_markers_and_legend(self):
        x = np.linspace(1, 10, 20)
        out = ascii_line_plot(
            {"a": (x, x**2), "b": (x, x)}, title="demo", x_label="t", y_label="v"
        )
        assert "demo" in out
        assert "legend" in out
        assert "o a" in out and "x b" in out

    def test_log_scales_drop_nonpositive_values(self):
        out = ascii_line_plot(
            {"a": ([0.0, 1.0, 10.0], [1.0, 2.0, 3.0])}, log_x=True, log_y=True
        )
        assert "log x" in out and "log y" in out

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_plot({})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_plot({"a": ([1, 2], [1, 2, 3])})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_plot({"a": ([1], [1])}, width=5, height=2)

    def test_all_nonfinite_data_handled(self):
        out = ascii_line_plot({"a": ([float("nan")], [float("nan")])}, title="t")
        assert "no finite data" in out

    def test_plot_traces_shape(self, traces):
        out = plot_traces(traces, y="objective", title="figure-1 shape")
        assert "figure-1 shape" in out
        assert "newton_admm" in out and "giant" in out

    def test_plot_scaling_groups_by_method(self):
        rows = [
            {"method": "newton_admm", "workers": 1, "avg_epoch_time_ms": 4.0},
            {"method": "newton_admm", "workers": 8, "avg_epoch_time_ms": 1.0},
            {"method": "giant", "workers": 1, "avg_epoch_time_ms": 6.0},
            {"method": "giant", "workers": 8, "avg_epoch_time_ms": 2.0},
        ]
        out = plot_scaling(rows, title="epoch time")
        assert "epoch time" in out
        assert "newton_admm" in out


class TestCLI:
    def test_registry_covers_all_tables_and_figures(self):
        assert {"table1", "figure1", "figure2", "figure3", "figure4", "figure5"} <= set(
            EXPERIMENT_REGISTRY
        )

    def test_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "figure99"])

    def test_list_command(self):
        lines = []
        assert main(["list"], print_fn=lines.append) == 0
        text = "\n".join(lines)
        assert "figure1" in text and "table1" in text

    def test_datasets_command(self):
        lines = []
        assert main(["datasets"], print_fn=lines.append) == 0
        assert "higgs_like" in "\n".join(lines)

    def test_solvers_command(self):
        lines = []
        assert main(["solvers"], print_fn=lines.append) == 0
        text = "\n".join(lines)
        assert "newton_admm" in text and "async_sgd" in text

    def test_engine_flag_sets_session_default(self):
        from repro.harness.config import default_engine, set_default_engine

        lines = []
        try:
            code = main(
                ["run", "table1", "--scale", "quick", "--engine", "event",
                 "--no-plot"],
                print_fn=lines.append,
            )
            assert code == 0
            assert any("using execution engine: event" in line for line in lines)
            assert default_engine() == "event"
        finally:
            set_default_engine("lockstep")

    def test_engine_flag_rejects_unknown_mode(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "figure1", "--engine", "warp"])

    def test_run_table1_writes_artifacts(self, tmp_path):
        lines = []
        code = main(
            ["run", "table1", "--scale", "quick", "--out", str(tmp_path)],
            print_fn=lines.append,
        )
        assert code == 0
        assert (tmp_path / "table1_quick_rows.csv").exists()
        assert (tmp_path / "table1_quick_report.txt").exists()
        assert any("Table 1" in line for line in lines)

    @pytest.mark.slow
    def test_run_ablation_penalty_plots_traces(self, tmp_path):
        lines = []
        code = main(
            ["run", "ablation-penalty", "--out", str(tmp_path)],
            print_fn=lines.append,
        )
        assert code == 0
        text = "\n".join(lines)
        assert "legend" in text  # the ASCII plot was rendered
        assert any("trace" in p.name for p in tmp_path.iterdir())

    @pytest.mark.slow
    def test_run_no_plot_flag(self):
        lines = []
        code = main(["run", "ablation-penalty", "--no-plot"], print_fn=lines.append)
        assert code == 0
        assert "legend" not in "\n".join(lines)
