"""Regenerate the golden traces pinning the schedule-IR refactor.

Run from the repository root::

    PYTHONPATH=src python tests/golden/generate_schedule_goldens.py

The fixture freezes, for every synchronous distributed solver, the final
iterate, the per-epoch objectives, the modelled times and the communication
totals of a small deterministic run.  ``tests/test_schedule.py`` replays the
same runs through the declarative :class:`~repro.distributed.schedule.RoundPlan`
path (on both engines) and compares bit-for-bit: the refactor from imperative
``map_workers`` + ``comm.*`` calls to compiled round plans must not change a
single float.

The file was first generated from the pre-refactor imperative solvers, so it
is also a cross-PR regression anchor; regenerate it only when an intentional
numerical change lands (and say so in the PR).
"""

import json
from pathlib import Path

from repro.admm.newton_admm import NewtonADMM
from repro.baselines.aide import AIDE
from repro.baselines.cocoa import CoCoA
from repro.baselines.dane import InexactDANE
from repro.baselines.disco import DiSCO
from repro.baselines.giant import GIANT
from repro.baselines.sync_sgd import SynchronousSGD
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster

GOLDEN_PATH = Path(__file__).parent / "schedule_equivalence.json"

N_WORKERS = 4

#: solver name -> (factory, dataset kind); epoch counts are kept tiny so the
#: whole fixture replays in seconds on both engines.
CASES = {
    "newton_admm": (
        lambda: NewtonADMM(lam=1e-3, max_epochs=4, record_accuracy=False),
        "multiclass",
    ),
    "giant": (
        lambda: GIANT(lam=1e-3, max_epochs=4, record_accuracy=False),
        "multiclass",
    ),
    "inexact_dane": (
        lambda: InexactDANE(lam=1e-3, max_epochs=2, record_accuracy=False),
        "multiclass",
    ),
    "aide": (
        lambda: AIDE(lam=1e-3, max_epochs=2, tau=0.5, record_accuracy=False),
        "multiclass",
    ),
    "disco": (
        lambda: DiSCO(lam=1e-3, max_epochs=3, record_accuracy=False),
        "multiclass",
    ),
    "cocoa": (
        lambda: CoCoA(lam=1e-3, max_epochs=3, record_accuracy=False),
        "binary",
    ),
    "sync_sgd": (
        lambda: SynchronousSGD(
            lam=1e-3, max_epochs=2, step_size=0.2, record_accuracy=False
        ),
        "multiclass",
    ),
}


def make_dataset(kind: str):
    if kind == "binary":
        return make_multiclass_gaussian(
            200, 8, 2, class_separation=3.0, random_state=1
        )
    return make_multiclass_gaussian(
        240, 10, 3, class_separation=3.0, random_state=0
    )


def run_case(name: str):
    factory, kind = CASES[name]
    cluster = SimulatedCluster(
        make_dataset(kind), N_WORKERS, engine="lockstep", random_state=0
    )
    trace = factory().fit(cluster)
    return {
        "dataset": kind,
        "final_w": [float(v) for v in trace.final_w],
        "objectives": [r.objective for r in trace.records],
        "modelled_times": [r.modelled_time for r in trace.records],
        "comm_times": [r.comm_time for r in trace.records],
        "comm_rounds": cluster.comm.log.n_rounds,
        "n_collectives": cluster.comm.log.n_collectives,
        "bytes_transferred": cluster.comm.log.bytes_transferred,
    }


def main() -> None:
    golden = {name: run_case(name) for name in CASES}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden)} solvers)")


if __name__ == "__main__":
    main()
