"""Tests for the true asynchronous execution path: event-driven async SGD
(measured staleness, backend safety) and quorum-based async Newton-ADMM
(bounded staleness, convergence, straggler speed-up)."""

import numpy as np
import pytest

from repro.admm.async_newton_admm import AsyncNewtonADMM
from repro.admm.newton_admm import NewtonADMM
from repro.backend.testing import TracingBackend
from repro.baselines.async_sgd import AsynchronousSGD
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.stragglers import StragglerModel
from repro.metrics.traces import time_to_objective


@pytest.fixture(scope="module")
def dataset():
    return make_multiclass_gaussian(240, 10, 3, class_separation=3.0, random_state=0)


def straggling_cluster(dataset, n_workers=4, slowdown=8.0, seed=0, **kwargs):
    return SimulatedCluster(
        dataset,
        n_workers,
        straggler=StragglerModel(
            slowdown=slowdown, persistent_stragglers=[0], random_state=seed
        ),
        random_state=seed,
        **kwargs,
    )


class TestAsyncSGDSchedule:
    def test_per_update_staleness_is_recorded(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        solver = AsynchronousSGD(lam=1e-3, max_epochs=3, random_state=0)
        trace = solver.fit(cluster)
        n_updates = int(sum(r.extras["updates"] for r in trace.records))
        assert len(solver.staleness_log) == n_updates
        assert all(s >= 0 for s in solver.staleness_log)

    def test_single_worker_is_always_fresh(self, dataset):
        cluster = SimulatedCluster(dataset, 1, random_state=0)
        solver = AsynchronousSGD(lam=1e-3, max_epochs=2, random_state=0)
        solver.fit(cluster)
        assert set(solver.staleness_log) == {0}

    def test_server_handling_serializes_updates(self, dataset):
        # A single worker's cycle is pull + compute + push with the server
        # busy 2*push per update, so the modelled epoch time is bounded below
        # by n_updates * (compute + 2 * p2p) — the server never overlaps its
        # own receive with the worker's next pull.
        cluster = SimulatedCluster(dataset, 1, random_state=0)
        solver = AsynchronousSGD(lam=1e-3, max_epochs=1, random_state=0)
        trace = solver.fit(cluster)
        n_updates = trace.final.extras["updates"]
        p2p = cluster.network.point_to_point(8.0 * cluster.dim)
        assert trace.final.modelled_time >= n_updates * 3 * p2p

    def test_hyperparameters_exclude_run_state(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        solver = AsynchronousSGD(lam=1e-3, max_epochs=1, random_state=0)
        solver.fit(cluster)
        params = solver.hyperparameters()
        assert not any(key.startswith("_") for key in params)
        assert "step_size" in params and "batch_size" in params

    def test_timelines_recorded_even_in_lockstep_mode(self, dataset):
        # Async solvers always schedule through the engine, whatever the
        # cluster's synchronous-path mode.
        cluster = SimulatedCluster(dataset, 4, engine="lockstep", random_state=0)
        trace = AsynchronousSGD(lam=1e-3, max_epochs=2, random_state=0).fit(cluster)
        assert len(trace.info["timelines"]) == 4
        kinds = {
            seg["kind"]
            for tl in trace.info["timelines"]
            for seg in tl["segments"]
        }
        assert {"busy", "comm"} <= kinds

    def test_grad_bytes_follow_dtype(self, dataset):
        # float32 data => float32 iterates => half the modelled traffic of the
        # old hard-coded 8 bytes/element assumption.
        ds32 = make_multiclass_gaussian(
            240, 10, 3, class_separation=3.0, random_state=0
        )
        ds32.X = ds32.X.astype(np.float32)
        c64 = SimulatedCluster(dataset, 4, random_state=0)
        c32 = SimulatedCluster(ds32, 4, random_state=0)
        AsynchronousSGD(lam=1e-3, max_epochs=1, random_state=0).fit(c64)
        AsynchronousSGD(lam=1e-3, max_epochs=1, random_state=0).fit(c32)
        assert c32.comm.log.bytes_transferred == pytest.approx(
            0.5 * c64.comm.log.bytes_transferred
        )

    def test_runs_on_injected_backend_without_numpy_copy_calls(self, dataset):
        # The solver must route array copies/ops through the backend seam
        # (w0.copy() / raw np arithmetic crashed on torch tensors).
        backend = TracingBackend()
        cluster = SimulatedCluster(dataset, 4, backend=backend, random_state=0)
        reference = SimulatedCluster(dataset, 4, random_state=0)
        solver = AsynchronousSGD(
            lam=1e-3, max_epochs=3, step_size=0.5, batch_size=32, random_state=0
        )
        trace = solver.fit(cluster)
        ref = AsynchronousSGD(
            lam=1e-3, max_epochs=3, step_size=0.5, batch_size=32, random_state=0
        ).fit(reference)
        np.testing.assert_array_equal(trace.final_w, ref.final_w)
        assert backend.total_calls() > 0

    @pytest.mark.parametrize("backend_name", ["torch", "cupy"])
    def test_runs_on_accelerator_backend_if_available(self, dataset, backend_name):
        from repro.backend import available_backends

        if not available_backends().get(backend_name, False):
            pytest.skip(f"{backend_name} not installed")
        cluster = SimulatedCluster(dataset, 4, backend=backend_name, random_state=0)
        trace = AsynchronousSGD(
            lam=1e-3, max_epochs=2, step_size=0.5, batch_size=32, random_state=0
        ).fit(cluster)
        assert np.isfinite(trace.final.objective)


class TestAsyncNewtonADMM:
    def test_converges_on_synthetic(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        trace = AsyncNewtonADMM(lam=1e-3, max_epochs=30).fit(cluster)
        assert trace.final.objective < 0.5 * trace.records[0].objective
        assert np.isfinite(trace.final.objective)

    def test_one_round_per_z_update(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        epochs = 12
        trace = AsyncNewtonADMM(lam=1e-3, max_epochs=epochs).fit(cluster)
        assert trace.final.comm_rounds == epochs
        assert cluster.comm.log.by_operation["async_reduce"] == epochs

    def test_full_quorum_without_stragglers_tracks_sync(self, dataset):
        # quorum == N and no stragglers makes every z-update wait for all
        # workers, so the schedule degenerates to the synchronous one and the
        # iterates should agree closely (not bitwise: the async master keeps
        # running sums rather than reducing per-round).
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        sync = NewtonADMM(lam=1e-3, max_epochs=8).fit(
            SimulatedCluster(dataset, 4, random_state=0)
        )
        asyn = AsyncNewtonADMM(lam=1e-3, max_epochs=8, quorum=4).fit(cluster)
        np.testing.assert_allclose(asyn.final_w, sync.final_w, rtol=1e-8, atol=1e-10)

    def test_bounded_staleness_is_enforced(self, dataset):
        bound = 3
        solver = AsyncNewtonADMM(
            lam=1e-3, max_epochs=25, quorum=2, max_staleness=bound
        )
        solver.fit(straggling_cluster(dataset, slowdown=32.0))
        assert max(row["max_staleness"] for row in solver.staleness_log) <= bound

    def test_staleness_measured_under_straggler(self, dataset):
        solver = AsyncNewtonADMM(
            lam=1e-3, max_epochs=25, quorum=3, max_staleness=20
        )
        solver.fit(straggling_cluster(dataset, slowdown=16.0))
        assert max(row["max_staleness"] for row in solver.staleness_log) >= 2

    def test_beats_sync_under_persistent_straggler_synthetic(self, dataset):
        sync = NewtonADMM(lam=1e-3, max_epochs=10).fit(straggling_cluster(dataset))
        asyn = AsyncNewtonADMM(
            lam=1e-3, max_epochs=40, quorum=3, max_staleness=10
        ).fit(straggling_cluster(dataset))
        target = sync.final.objective
        assert asyn.final.objective <= target
        assert time_to_objective(asyn, target) < sync.final.modelled_time

    def test_beats_sync_under_persistent_straggler_mnist(self):
        # The "real dataset config" leg of the acceptance criterion: the
        # MNIST stand-in at a small scale, 8 workers, worker 0 slowed 8x.
        train, test = load_dataset(
            "mnist_like", n_train=1200, n_test=200, random_state=0
        )
        def make(n=8):
            return SimulatedCluster(
                train,
                n,
                straggler=StragglerModel(slowdown=8.0, persistent_stragglers=[0]),
                random_state=0,
            )
        sync = NewtonADMM(lam=1e-5, max_epochs=8).fit(make(), test=test)
        asyn = AsyncNewtonADMM(
            lam=1e-5, max_epochs=48, quorum=7, max_staleness=10
        ).fit(make(), test=test)
        target = sync.final.objective
        assert asyn.final.objective <= target
        assert time_to_objective(asyn, target) < sync.final.modelled_time

    def test_quorum_resolution_and_validation(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        assert AsyncNewtonADMM()._resolve_quorum(4) == 3
        assert AsyncNewtonADMM(quorum=0.5)._resolve_quorum(4) == 2
        assert AsyncNewtonADMM(quorum=1.0)._resolve_quorum(4) == 4
        assert AsyncNewtonADMM(quorum=2)._resolve_quorum(4) == 2
        with pytest.raises(ValueError):
            AsyncNewtonADMM(quorum=0)
        with pytest.raises(ValueError):
            AsyncNewtonADMM(quorum=1.5)
        with pytest.raises(ValueError):
            AsyncNewtonADMM(max_staleness=0)
        with pytest.raises(ValueError):
            AsyncNewtonADMM(quorum=9).fit(cluster)

    def test_extras_expose_schedule_diagnostics(self, dataset):
        cluster = SimulatedCluster(dataset, 4, random_state=0)
        trace = AsyncNewtonADMM(lam=1e-3, max_epochs=5).fit(cluster)
        extras = trace.final.extras
        for key in ("primal_residual", "dual_residual", "quorum_size",
                    "mean_staleness", "local_newton_iters"):
            assert key in extras
        assert trace.info["timelines"]
