"""Tests for the numerically stable primitives (log-sum-exp trick, §6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.objectives.numerics import (
    flatten_weights,
    full_class_probabilities,
    log1p_exp,
    log_sum_exp,
    sigmoid,
    softmax_probabilities,
    split_weights,
)


def naive_lse_with_zero(logits):
    return np.log(1.0 + np.exp(logits).sum(axis=1))


class TestLogSumExp:
    def test_matches_naive_for_moderate_inputs(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((50, 4))
        np.testing.assert_allclose(
            log_sum_exp(logits), naive_lse_with_zero(logits), rtol=1e-12
        )

    def test_no_overflow_for_huge_logits(self):
        logits = np.full((3, 4), 1e4)
        out = log_sum_exp(logits)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, 1e4 + np.log(4), rtol=1e-10)

    def test_no_underflow_for_tiny_logits(self):
        logits = np.full((3, 4), -1e4)
        out = log_sum_exp(logits)
        np.testing.assert_allclose(out, 0.0, atol=1e-10)

    def test_without_zero_class(self):
        logits = np.array([[0.0, 0.0]])
        np.testing.assert_allclose(
            log_sum_exp(logits, include_zero=False), np.log(2.0)
        )

    def test_lower_bound(self):
        # log(1 + sum exp) >= max(0, max logit)
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((20, 3)) * 5
        out = log_sum_exp(logits)
        assert np.all(out >= np.maximum(logits.max(axis=1), 0.0) - 1e-12)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6),
            elements=st.floats(-50, 50),
        )
    )
    def test_property_matches_naive(self, logits):
        np.testing.assert_allclose(
            log_sum_exp(logits), naive_lse_with_zero(logits), rtol=1e-9, atol=1e-9
        )


class TestSoftmaxProbabilities:
    def test_rows_sum_below_one_with_zero_class(self):
        rng = np.random.default_rng(0)
        P = softmax_probabilities(rng.standard_normal((30, 5)))
        sums = P.sum(axis=1)
        assert np.all(sums < 1.0)
        assert np.all(P >= 0.0)

    def test_full_probabilities_sum_to_one(self):
        rng = np.random.default_rng(0)
        P = full_class_probabilities(rng.standard_normal((30, 5)) * 10)
        np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-12)
        assert P.shape == (30, 6)

    def test_extreme_logits_stable(self):
        P = full_class_probabilities(np.array([[1e4, -1e4]]))
        assert np.all(np.isfinite(P))
        np.testing.assert_allclose(P[0, 0], 1.0, atol=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=5),
            elements=st.floats(-200, 200),
        )
    )
    def test_property_valid_distribution(self, logits):
        P = full_class_probabilities(logits)
        assert np.all(P >= 0.0)
        assert np.all(P <= 1.0 + 1e-12)
        np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-9)


class TestScalarHelpers:
    def test_sigmoid_range_and_symmetry(self):
        z = np.linspace(-700, 700, 101)
        s = sigmoid(z)
        assert np.all((s >= 0) & (s <= 1))
        np.testing.assert_allclose(s + sigmoid(-z), 1.0, atol=1e-12)

    def test_log1p_exp_matches_naive(self):
        z = np.linspace(-30, 30, 61)
        np.testing.assert_allclose(log1p_exp(z), np.log1p(np.exp(z)), rtol=1e-12)

    def test_log1p_exp_no_overflow(self):
        out = log1p_exp(np.array([1e4]))
        np.testing.assert_allclose(out, 1e4)


class TestWeightReshaping:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        W = rng.standard_normal((7, 4))  # (p, C-1)
        w = flatten_weights(W)
        assert w.shape == (28,)
        np.testing.assert_array_equal(split_weights(w, 7, 5), W)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            split_weights(np.zeros(10), 3, 5)
