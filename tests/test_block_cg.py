"""Block CG and batched Hessian-vector products.

``block_conjugate_gradient`` runs every right-hand side through the exact
scalar CG recurrence in lockstep — one batched ``matmat`` per iteration —
so each column must agree with its own scalar solve up to GEMM
reassociation, and the 1-D routing through ``conjugate_gradient(...,
block=True)`` must be *bit*-identical to the scalar path (which is what
makes the solvers' ``cg_block`` flag safe to flip).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.admm.newton_admm import NewtonADMM
from repro.baselines.giant import GIANT
from repro.distributed.cluster import SimulatedCluster
from repro.linalg.cg import block_conjugate_gradient, conjugate_gradient
from repro.linalg.operators import (
    BatchedHessianOperator,
    DiagonalOperator,
    MatrixOperator,
)
from repro.objectives.base import (
    LinearlyPerturbedObjective,
    RegularizedObjective,
)
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.newton_cg import NewtonCG


def _spd_problem(dim=12, n_rhs=4, seed=0):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((dim, dim))
    A = M @ M.T + dim * np.eye(dim)
    B = rng.standard_normal((dim, n_rhs))
    return MatrixOperator(A), A, B


def _softmax_objective(n=90, p=7, c=4, seed=0, sparse=False, lam=1e-3):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, p))
    if sparse:
        X[X < 0.3] = 0.0
        X = sp.csr_matrix(X)
    y = rng.integers(0, c, size=n)
    y[:c] = np.arange(c)
    loss = SoftmaxCrossEntropy(X, y, c)
    return RegularizedObjective(loss, L2Regularizer(loss.dim, lam))


class TestBlockCG:
    def test_matches_per_column_scalar_solves(self):
        op, A, B = _spd_problem()
        result = block_conjugate_gradient(op, B, tol=1e-12, max_iter=200)
        assert result.converged
        for j in range(B.shape[1]):
            scalar = conjugate_gradient(op, B[:, j], tol=1e-12, max_iter=200)
            np.testing.assert_allclose(
                result.X[:, j], scalar.x, rtol=1e-8, atol=1e-10
            )

    def test_solves_the_systems(self):
        op, A, B = _spd_problem()
        result = block_conjugate_gradient(op, B, tol=1e-12, max_iter=200)
        np.testing.assert_allclose(A @ result.X, B, rtol=1e-7, atol=1e-8)

    def test_one_dim_rhs_with_block_flag_is_bit_identical(self):
        op, _, B = _spd_problem()
        b = B[:, 0]
        plain = conjugate_gradient(op, b, tol=1e-10, max_iter=50)
        routed = conjugate_gradient(op, b, tol=1e-10, max_iter=50, block=True)
        np.testing.assert_array_equal(plain.x, routed.x)
        assert plain.n_iterations == routed.n_iterations

    def test_two_dim_rhs_without_block_flag_raises(self):
        op, _, B = _spd_problem()
        with pytest.raises(ValueError, match="block"):
            conjugate_gradient(op, B, tol=1e-10, max_iter=50)

    def test_block_flag_routes_two_dim_rhs(self):
        op, A, B = _spd_problem()
        result = conjugate_gradient(op, B, tol=1e-12, max_iter=200, block=True)
        np.testing.assert_allclose(A @ result.X, B, rtol=1e-7, atol=1e-8)

    def test_columns_converge_independently(self):
        """An easy column freezes while a hard one keeps iterating."""
        diag = np.ones(30)
        diag[-1] = 1e4  # one stiff direction
        op = DiagonalOperator(diag)
        B = np.zeros((30, 2))
        B[0, 0] = 1.0  # trivially solved in one iteration
        B[:, 1] = np.ones(30)
        result = block_conjugate_gradient(op, B, tol=1e-10, max_iter=50)
        assert result.converged
        assert result.column_converged.all()
        np.testing.assert_allclose(result.X * diag[:, None], B, atol=1e-8)

    def test_negative_curvature_column_falls_back_to_rhs(self):
        """First-iteration negative curvature returns b for that column —
        the same gradient-direction fallback the scalar solver uses."""
        diag = np.ones(8)
        diag[3] = -2.0
        op = DiagonalOperator(diag)
        rng = np.random.default_rng(1)
        B = rng.standard_normal((8, 2))
        scalar = conjugate_gradient(op, B[:, 0], tol=1e-10, max_iter=30)
        blocked = block_conjugate_gradient(op, B, tol=1e-10, max_iter=30)
        np.testing.assert_allclose(blocked.X[:, 0], scalar.x, rtol=1e-8)

    def test_preconditioned_block_matches_scalar(self):
        op, A, B = _spd_problem(seed=3)
        pre = DiagonalOperator(1.0 / np.diag(A))
        blocked = block_conjugate_gradient(
            op, B, tol=1e-12, max_iter=200, preconditioner=pre
        )
        for j in range(B.shape[1]):
            scalar = conjugate_gradient(
                op, B[:, j], tol=1e-12, max_iter=200, preconditioner=pre
            )
            np.testing.assert_allclose(
                blocked.X[:, j], scalar.x, rtol=1e-8, atol=1e-10
            )

    def test_float32_block_stays_float32(self):
        op32 = MatrixOperator(
            (np.eye(6) * 3.0 + 0.1 * np.ones((6, 6))).astype(np.float32)
        )
        B = np.random.default_rng(0).standard_normal((6, 2)).astype(np.float32)
        result = block_conjugate_gradient(op32, B, tol=1e-5, max_iter=30)
        assert result.X.dtype == np.float32

    def test_mixed_dtype_block_raises(self):
        op32 = MatrixOperator(np.eye(4, dtype=np.float32))
        B64 = np.ones((4, 2), dtype=np.float64)
        with pytest.raises(TypeError, match="mixed dtypes"):
            block_conjugate_gradient(op32, B64, tol=1e-6, max_iter=10)


class TestBatchedHVP:
    @pytest.mark.parametrize("sparse", [False, True], ids=["dense", "csr"])
    def test_hvp_mat_matches_looped_hvp(self, sparse):
        obj = _softmax_objective(sparse=sparse)
        rng = np.random.default_rng(2)
        w = rng.standard_normal(obj.dim) * 0.1
        V = rng.standard_normal((obj.dim, 5))
        M = obj.hvp_mat(w, V)
        assert M.shape == V.shape
        for j in range(V.shape[1]):
            np.testing.assert_allclose(
                M[:, j], obj.hvp(w, V[:, j]), rtol=1e-9, atol=1e-12
            )

    def test_hvp_mat_through_wrappers(self):
        base = _softmax_objective()
        rng = np.random.default_rng(3)
        obj = LinearlyPerturbedObjective(
            base,
            rng.standard_normal(base.dim),
            mu=0.5,
            center=rng.standard_normal(base.dim),
        )
        w = rng.standard_normal(obj.dim) * 0.1
        V = rng.standard_normal((obj.dim, 3))
        M = obj.hvp_mat(w, V)
        for j in range(V.shape[1]):
            np.testing.assert_allclose(
                M[:, j], obj.hvp(w, V[:, j]), rtol=1e-9, atol=1e-12
            )

    def test_operator_counts_one_matvec_per_column(self):
        obj = _softmax_objective()
        w = np.zeros(obj.dim)
        op = BatchedHessianOperator(obj, w)
        V = np.random.default_rng(4).standard_normal((obj.dim, 6))
        op.matmat(V)
        assert op.n_matvecs == 6
        op.matvec(V[:, 0])
        assert op.n_matvecs == 7

    def test_operator_rejects_bad_shapes(self):
        obj = _softmax_objective()
        op = BatchedHessianOperator(obj, np.zeros(obj.dim))
        with pytest.raises(ValueError):
            op.matmat(np.zeros(obj.dim))  # 1-D
        with pytest.raises(ValueError):
            op.matmat(np.zeros((obj.dim + 1, 2)))  # wrong leading dim

    def test_per_class_hvp_agrees_with_batched(self):
        obj = _softmax_objective()
        loss = obj.loss
        rng = np.random.default_rng(5)
        w = rng.standard_normal(obj.dim) * 0.1
        v = rng.standard_normal(obj.dim)
        np.testing.assert_allclose(
            loss.hvp_per_class(w, v), loss.hvp(w, v), rtol=1e-10, atol=1e-13
        )


class TestSolverOptIn:
    """``cg_block=True`` changes per-iteration cost, not results."""

    def test_newton_cg_iterates_bit_identical(self):
        obj = _softmax_objective(n=200, p=10, c=4, seed=7)
        plain = NewtonCG(max_iterations=5, cg_max_iter=20).minimize(obj)
        blocked = NewtonCG(
            max_iterations=5, cg_max_iter=20, cg_block=True
        ).minimize(obj)
        # Single-RHS solves route through the scalar path: bit-identical.
        np.testing.assert_array_equal(plain.w, blocked.w)

    def test_newton_admm_converges_with_block_cg(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        plain = NewtonADMM(lam=1e-4, max_epochs=6).fit(cluster)
        blocked = NewtonADMM(lam=1e-4, max_epochs=6, cg_block=True).fit(cluster)
        np.testing.assert_array_equal(plain.final_w, blocked.final_w)

    def test_giant_converges_with_block_cg(self, small_multiclass_split):
        train, _ = small_multiclass_split
        cluster = SimulatedCluster(train, 4, random_state=0)
        plain = GIANT(lam=1e-3, max_epochs=4).fit(cluster)
        blocked = GIANT(lam=1e-3, max_epochs=4, cg_block=True).fit(cluster)
        np.testing.assert_array_equal(plain.final_w, blocked.final_w)
