"""Tests for the real-process execution engine (``engine="process"``).

Three pillars:

- **Equivalence**: every synchronous solver produces bit-identical fp64
  iterates, identical modelled times, and identical communication totals on
  real OS processes as on the simulated engines — the determinism contract of
  ``docs/performance.md``.  The quick matrix runs at a small worker count
  (``REPRO_PROCESS_TEST_WORKERS``, default 2 — CI pins 2); the golden-trace
  replay at the canonical 4 workers is marked ``slow``.
- **Chaos**: ``kill -9`` of a live worker process surfaces as a structured
  :class:`~repro.distributed.faults.WorkerLostError` under every declared
  ``on_failure`` policy, and the pool respawns cleanly for the next fit.
- **Plumbing**: zero-copy shared-memory shard handoff (placement counters),
  fork-safety of session defaults under spawn, measured wall-clock timelines
  in ``trace.info``, and the async-solver fallback.
"""

import json
import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.admm.async_newton_admm import AsyncNewtonADMM
from repro.admm.newton_admm import NewtonADMM
from repro.baselines.aide import AIDE
from repro.baselines.cocoa import CoCoA
from repro.baselines.dane import InexactDANE
from repro.baselines.disco import DiSCO
from repro.baselines.giant import GIANT
from repro.baselines.sync_sgd import SynchronousSGD
from repro.datasets.synthetic import make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.collectives import star_allgather_ipc_seconds
from repro.distributed.faults import WorkerLostError
from repro.distributed.process_engine import process_engine_info
from repro.harness.config import default_engine, set_default_engine

pytestmark = pytest.mark.process_engine

GOLDEN_PATH = Path(__file__).parent / "golden" / "schedule_equivalence.json"

#: worker count of the quick equivalence matrix; CI pins this to 2 so the
#: suite cannot oversubscribe small runners
N_WORKERS = int(os.environ.get("REPRO_PROCESS_TEST_WORKERS", "2"))

#: mirrors tests/test_schedule.py (and the golden generator) so the process
#: engine is held to the same recorded schedules
SOLVER_FACTORIES = {
    "newton_admm": lambda: NewtonADMM(lam=1e-3, max_epochs=4, record_accuracy=False),
    "giant": lambda: GIANT(lam=1e-3, max_epochs=4, record_accuracy=False),
    "inexact_dane": lambda: InexactDANE(lam=1e-3, max_epochs=2, record_accuracy=False),
    "aide": lambda: AIDE(lam=1e-3, max_epochs=2, tau=0.5, record_accuracy=False),
    "disco": lambda: DiSCO(lam=1e-3, max_epochs=3, record_accuracy=False),
    "cocoa": lambda: CoCoA(lam=1e-3, max_epochs=3, record_accuracy=False),
    "sync_sgd": lambda: SynchronousSGD(
        lam=1e-3, max_epochs=2, step_size=0.2, record_accuracy=False
    ),
}


@pytest.fixture(scope="module")
def dataset():
    return make_multiclass_gaussian(240, 10, 3, class_separation=3.0, random_state=0)


@pytest.fixture(scope="module")
def binary_dataset():
    return make_multiclass_gaussian(200, 8, 2, class_separation=3.0, random_state=1)


def _dataset_for(name, dataset, binary_dataset):
    return binary_dataset if name == "cocoa" else dataset


def _fit(data, name, engine, n_workers=N_WORKERS, **solver_kwargs):
    cluster = SimulatedCluster(
        data, n_workers, loss="softmax", engine=engine, random_state=0
    )
    solver = SOLVER_FACTORIES[name]()
    for key, value in solver_kwargs.items():
        setattr(solver, key, value)
    try:
        trace = solver.fit(cluster)
    finally:
        cluster.close()
    return trace, cluster


# ---------------------------------------------------------------------------
# Equivalence: real processes change no float
# ---------------------------------------------------------------------------
class TestEngineEquivalence:
    @pytest.mark.parametrize("name", sorted(SOLVER_FACTORIES))
    def test_process_matches_simulated_engines(self, name, dataset, binary_dataset):
        data = _dataset_for(name, dataset, binary_dataset)
        traces = {}
        clusters = {}
        for engine in ("lockstep", "event", "process"):
            traces[engine], clusters[engine] = _fit(data, name, engine)
        reference = traces["event"]
        for engine in ("lockstep", "process"):
            trace = traces[engine]
            assert trace.final_w.dtype == np.float64
            assert np.array_equal(trace.final_w, reference.final_w), engine
            assert [r.objective for r in trace.records] == [
                r.objective for r in reference.records
            ], engine
        # The process engine replicates the event engine's modelled
        # accounting exactly: clocks, rounds, collectives, and bytes.
        process = traces["process"]
        assert [r.modelled_time for r in process.records] == [
            r.modelled_time for r in reference.records
        ]
        assert [r.comm_time for r in process.records] == [
            r.comm_time for r in reference.records
        ]
        for field in ("rounds", "collectives", "bytes"):
            assert (
                process.info["communication"][field]
                == reference.info["communication"][field]
            )
        assert process.info["total_flops"] == reference.info["total_flops"]

    def test_process_run_is_self_deterministic(self, dataset):
        one, _ = _fit(dataset, "newton_admm", "process")
        two, _ = _fit(dataset, "newton_admm", "process")
        assert np.array_equal(one.final_w, two.final_w)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", sorted(SOLVER_FACTORIES))
    def test_matches_pre_refactor_golden_at_four_workers(
        self, name, dataset, binary_dataset
    ):
        with GOLDEN_PATH.open() as fh:
            golden = json.load(fh)
        data = _dataset_for(name, dataset, binary_dataset)
        trace, cluster = _fit(data, name, "process", n_workers=4)
        expected = golden[name]
        assert trace.final_w.tolist() == expected["final_w"]
        assert [r.objective for r in trace.records] == expected["objectives"]
        assert [r.modelled_time for r in trace.records] == expected["modelled_times"]
        assert cluster.comm.log.n_rounds == expected["comm_rounds"]
        assert cluster.comm.log.n_collectives == expected["n_collectives"]
        assert cluster.comm.log.bytes_transferred == expected["bytes_transferred"]


# ---------------------------------------------------------------------------
# Measured wall-clock alongside modelled time
# ---------------------------------------------------------------------------
class TestWallClock:
    def test_trace_records_measured_timelines(self, dataset):
        trace, _ = _fit(dataset, "newton_admm", "process")
        wall = trace.info["wall_clock"]
        assert wall["engine"] == "process"
        assert wall["n_processes"] == N_WORKERS
        assert wall["start_method"] == "spawn"
        assert wall["elapsed_seconds"] > 0
        assert len(wall["workers"]) == N_WORKERS
        for row in wall["workers"]:
            assert row["total"] > 0
            assert row["busy"] > 0
        summary = wall["summary"]
        assert summary["n_workers"] == N_WORKERS
        assert summary["makespan_seconds"] > 0
        assert 0.0 < summary["parallel_efficiency"] <= 1.0
        json.dumps(wall)  # artifact-serializable like every other info block

    def test_modelled_timelines_still_attached(self, dataset):
        """Real execution does not displace the modelled event timelines."""
        trace, _ = _fit(dataset, "newton_admm", "process")
        assert "timelines" in trace.info
        assert len(trace.info["timelines"]) == N_WORKERS


# ---------------------------------------------------------------------------
# Chaos: kill -9 a live worker
# ---------------------------------------------------------------------------
class TestChaos:
    @pytest.mark.parametrize("policy", ["raise", "stall", "degrade"])
    def test_sigkill_raises_structured_loss(self, policy, dataset):
        cluster = SimulatedCluster(
            dataset, N_WORKERS, loss="softmax", engine="process", random_state=0
        )
        try:
            runtime = cluster.process_runtime
            runtime.ensure_started()
            victim = N_WORKERS - 1
            os.kill(runtime.worker_pids()[victim], signal.SIGKILL)
            solver = NewtonADMM(
                lam=1e-3, max_epochs=2, record_accuracy=False, on_failure=policy
            )
            with pytest.raises(WorkerLostError) as excinfo:
                solver.fit(cluster)
            error = excinfo.value
            assert error.worker_id == victim
            assert f"policy '{policy}'" in str(error)
            if policy == "stall":
                assert "cannot restart" in str(error)
            if policy == "degrade":
                assert "degraded membership" in str(error)
        finally:
            cluster.close()

    def test_pool_respawns_after_a_loss(self, dataset):
        cluster = SimulatedCluster(
            dataset, N_WORKERS, loss="softmax", engine="process", random_state=0
        )
        try:
            runtime = cluster.process_runtime
            runtime.ensure_started()
            first_pids = runtime.worker_pids()
            os.kill(first_pids[1], signal.SIGKILL)
            with pytest.raises(WorkerLostError):
                NewtonADMM(lam=1e-3, max_epochs=2, record_accuracy=False).fit(cluster)
            # The next fit starts a fresh pool and completes normally...
            trace = NewtonADMM(lam=1e-3, max_epochs=2, record_accuracy=False).fit(
                cluster
            )
            assert np.isfinite(trace.records[-1].objective)
            # ...with new worker processes, not zombies of the old pool.
            assert set(runtime.worker_pids().values()).isdisjoint(
                first_pids.values()
            )
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# Zero-copy shard handoff
# ---------------------------------------------------------------------------
class TestSharedMemoryHandoff:
    def test_datasets_cross_once_via_shared_memory(self, dataset):
        cluster = SimulatedCluster(
            dataset, N_WORKERS, loss="softmax", engine="process", random_state=0
        )
        try:
            runtime = cluster.process_runtime
            NewtonADMM(lam=1e-3, max_epochs=2, record_accuracy=False).fit(cluster)
            # Global training set + one shard per worker, placed exactly
            # once; a dense dataset is two blocks (X and y).
            placements = runtime.shm_placements
            assert placements == 2 * (1 + N_WORKERS)
            assert runtime.shm_bytes >= dataset.X.nbytes
            # A second fit on the same cluster reuses the pool and the arena:
            # no dataset bytes cross the process boundary again.
            NewtonADMM(lam=1e-3, max_epochs=2, record_accuracy=False).fit(cluster)
            assert runtime.shm_placements == placements
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# Fork safety: spawned replicas see explicit session state, runs stay
# independent
# ---------------------------------------------------------------------------
class TestForkSafety:
    def test_children_apply_bootstrap_session_defaults(self, dataset):
        cluster = SimulatedCluster(
            dataset, N_WORKERS, loss="softmax", engine="process", random_state=0
        )
        try:
            runtime = cluster.process_runtime
            runtime.ensure_started()
            for info in runtime.child_info.values():
                assert info["start_method"] == "spawn"
                session = info["session"]
                assert session["engine"] == "process"
                assert session["backend"] == "numpy"
        finally:
            cluster.close()

    def test_sequential_runs_are_independent(self, dataset):
        """Mutating session defaults between runs must not leak through a
        stale pool: each run's children carry their own bootstrap."""
        previous = default_engine()
        trace_a, _ = _fit(dataset, "newton_admm", "process")
        try:
            set_default_engine("event")  # perturb session state between runs
            trace_b, _ = _fit(dataset, "newton_admm", "process")
        finally:
            set_default_engine(previous)
        assert np.array_equal(trace_a.final_w, trace_b.final_w)
        assert [r.modelled_time for r in trace_a.records] == [
            r.modelled_time for r in trace_b.records
        ]


# ---------------------------------------------------------------------------
# Async fallback + guard rails
# ---------------------------------------------------------------------------
class TestDispatchPolicy:
    def test_async_solver_falls_back_to_simulated_path(self, dataset):
        cluster = SimulatedCluster(
            dataset, N_WORKERS, loss="softmax", engine="process", random_state=0
        )
        try:
            assert AsyncNewtonADMM.supports_process_engine is False
            solver = AsyncNewtonADMM(
                lam=1e-3, max_epochs=2, record_accuracy=False
            )
            trace = solver.fit(cluster)
            # Ran in-process: no measured wall-clock block, no worker pool.
            assert "wall_clock" not in trace.info
            assert cluster.process_runtime.worker_pids() == {}
        finally:
            cluster.close()

    def test_simulated_fault_injection_rejected_up_front(self, dataset):
        from repro.distributed.faults import FailureModel

        with pytest.raises(ValueError, match="modelled FailureModel injection"):
            SimulatedCluster(
                dataset,
                N_WORKERS,
                engine="process",
                faults=FailureModel.from_spec("0@2.5,restart=1.0"),
                random_state=0,
            )

    def test_non_serial_executor_rejected(self, dataset):
        with pytest.raises(ValueError, match="executor"):
            SimulatedCluster(
                dataset, N_WORKERS, engine="process", executor="thread", random_state=0
            )


# ---------------------------------------------------------------------------
# Introspection + IPC cost model
# ---------------------------------------------------------------------------
class TestIntrospection:
    def test_process_engine_info_shape(self):
        info = process_engine_info()
        assert info["start_method"] == "spawn"
        assert info["cpu_count"] >= 1
        assert info["shared_memory"] is True
        assert isinstance(info["torch_distributed"], str)

    def test_star_ipc_cost_model(self):
        assert star_allgather_ipc_seconds(1, 1e6) == 0.0
        two = star_allgather_ipc_seconds(2, 1e6)
        eight = star_allgather_ipc_seconds(8, 1e6)
        assert 0.0 < two < eight
        # O(N^2) bytes through the root: doubling workers more than
        # doubles the cost.
        four = star_allgather_ipc_seconds(4, 1e6)
        assert eight / four > 2.0
