"""Tests for preprocessing (standardization, bias column, row normalization)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets.base import ClassificationDataset
from repro.datasets.preprocessing import (
    Standardizer,
    add_bias_column,
    normalize_rows,
    standardize,
)
from repro.datasets.synthetic import make_multiclass_gaussian, make_sparse_multiclass


@pytest.fixture()
def dense_ds():
    return make_multiclass_gaussian(200, 6, 3, random_state=0)


@pytest.fixture()
def sparse_ds():
    return make_sparse_multiclass(100, 50, 3, density=0.2, random_state=0)


class TestStandardizer:
    def test_dense_zero_mean_unit_variance(self, dense_ds):
        Z = Standardizer().fit_transform(dense_ds.X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-8)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.eye(3))

    def test_constant_feature_not_divided_by_zero(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        Z = Standardizer().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_sparse_scaling_preserves_sparsity(self, sparse_ds):
        scaler = Standardizer()
        Z = scaler.fit_transform(sparse_ds.X)
        assert sp.issparse(Z)
        assert Z.nnz == sparse_ds.X.nnz

    def test_sparse_no_centering(self, sparse_ds):
        scaler = Standardizer().fit(sparse_ds.X)
        assert not scaler.with_mean
        np.testing.assert_allclose(scaler.mean_, 0.0)


class TestStandardizeDatasets:
    def test_train_only(self, dense_ds):
        out = standardize(dense_ds)
        assert isinstance(out, ClassificationDataset)
        np.testing.assert_allclose(out.X.mean(axis=0), 0.0, atol=1e-10)

    def test_train_and_test_use_train_statistics(self, dense_ds):
        train = dense_ds.subset(np.arange(150))
        test = dense_ds.subset(np.arange(150, 200))
        new_train, new_test = standardize(train, test)
        # Test set transformed with train statistics: not exactly zero-mean.
        np.testing.assert_allclose(new_train.X.mean(axis=0), 0.0, atol=1e-10)
        assert abs(new_test.X.mean()) > 0.0
        assert new_test.n_samples == 50

    def test_originals_not_mutated(self, dense_ds):
        before = dense_ds.X.copy()
        standardize(dense_ds)
        np.testing.assert_array_equal(dense_ds.X, before)


class TestBiasColumn:
    def test_dense(self, dense_ds):
        out = add_bias_column(dense_ds)
        assert out.n_features == dense_ds.n_features + 1
        np.testing.assert_allclose(out.X[:, -1], 1.0)

    def test_sparse(self, sparse_ds):
        out = add_bias_column(sparse_ds)
        assert sp.issparse(out.X)
        assert out.n_features == sparse_ds.n_features + 1
        np.testing.assert_allclose(np.asarray(out.X[:, -1].todense()).ravel(), 1.0)

    def test_metadata_flag(self, dense_ds):
        assert add_bias_column(dense_ds).metadata["bias_column"] is True


class TestRowNormalization:
    def test_dense_unit_norms(self, dense_ds):
        out = normalize_rows(dense_ds)
        norms = np.linalg.norm(out.X, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-10)

    def test_sparse_unit_norms(self, sparse_ds):
        out = normalize_rows(sparse_ds)
        norms = np.sqrt(np.asarray(out.X.multiply(out.X).sum(axis=1)).ravel())
        nonzero = norms > 0
        np.testing.assert_allclose(norms[nonzero], 1.0, atol=1e-10)

    def test_zero_row_handled(self):
        X = np.zeros((3, 4))
        X[1, 0] = 2.0
        ds = ClassificationDataset(X=X, y=np.array([0, 1, 1]), n_classes=2)
        out = normalize_rows(ds)
        assert np.all(np.isfinite(out.X))
