"""Unit tests for the static plan analysis layer (repro.analysis).

Covers the effect model (inference, declaration, conservative fallback),
every verifier rule PLN001..PLN009 with a triggering and a clean case, the
static/execute equivalence of the overlap proposer across all registered
sync solvers, and the effect-verified hoist proposer on the GIANT pattern.

The thunks used to build plans are module-level on purpose: effect
inference reads function sources through ``linecache``, so thunks defined
in a REPL/exec string resolve to the conservative UNKNOWN footprint —
which is itself one of the cases below.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import infer_effects, step_effects, verify_plan
from repro.analysis.effects import UNKNOWN_EFFECTS, declared_effects
from repro.datasets.synthetic import make_binary_margin, make_multiclass_gaussian
from repro.distributed.autotune import propose_hoist, propose_overlap
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.schedule import (
    Collective,
    Join,
    LocalStep,
    RoundPlan,
    execute_plan,
)
from repro.distributed.schedule_diff import ClusterProfile
from repro.harness.runner import SOLVER_REGISTRY

# ---------------------------------------------------------------------------
# Module-level thunks (inference needs real source lines)
# ---------------------------------------------------------------------------
def _compute(worker, ctx):
    return 1.0


def _local_mixed(worker, ctx):
    worker.state["scratch"] = ctx["a"]
    return ctx.get("b", 0.0) + worker.state["s"]


def _payload(key):
    return lambda ctx: ctx[key]


def _consume(key):
    def fn(ctx):
        return float(ctx[key]) * 2.0

    return fn


def _reweight(ctx):
    return float(ctx["total"]) / len(ctx["alive_workers"])


_OPAQUE = {}
exec("def _opaque(ctx):\n    return ctx['s1']\n", _OPAQUE)  # noqa: S102


_DATASET = make_multiclass_gaussian(160, 6, 3, class_separation=2.0, random_state=0)
_BINARY = make_binary_margin(150, 8, margin=1.5, random_state=1)

SYNC_SOLVERS = (
    "newton_admm",
    "giant",
    "inexact_dane",
    "aide",
    "disco",
    "cocoa",
    "sync_sgd",
)


def _cluster(binary: bool = False) -> SimulatedCluster:
    data = _BINARY if binary else _DATASET
    return SimulatedCluster(data, 4, engine="event", random_state=0)


def _fitted_plan(name: str):
    solver = SOLVER_REGISTRY[name](max_epochs=1)
    cluster = _cluster(binary=name == "cocoa")
    solver.fit(cluster)
    return solver._plan_epoch(cluster, 0), cluster


# ---------------------------------------------------------------------------
# Effects: inference, declaration, fallback
# ---------------------------------------------------------------------------
class TestEffects:
    def test_infers_ctx_and_worker_reads_and_writes(self):
        eff = infer_effects(_local_mixed, worker_param=0, ctx_param=1)
        assert eff.reads == frozenset({"a", "b", "worker:s"})
        assert eff.writes == frozenset({"worker:scratch"})
        assert eff.exact

    def test_infers_closure_resolved_keys(self):
        eff = infer_effects(_payload("g1"), ctx_param=0)
        assert eff.reads == frozenset({"g1"})
        assert eff.exact
        eff2 = infer_effects(_consume("s9"), ctx_param=0)
        assert eff2.reads == frozenset({"s9"})

    def test_exec_defined_thunk_is_unknown(self):
        eff = infer_effects(_OPAQUE["_opaque"], ctx_param=0)
        assert not eff.exact

    def test_declared_effects_override_inference(self):
        step = LocalStep(
            "g",
            _local_mixed,
            effects={"reads": ["x"], "writes": ["worker:w"]},
        )
        eff = step_effects(step)
        assert eff.reads == frozenset({"x"})
        # the binding write ctx["g"] is always part of the contract
        assert eff.writes == frozenset({"worker:w", "g"})
        assert eff.exact

    def test_declared_effects_reject_unknown_keys(self):
        with pytest.raises(ValueError):
            declared_effects({"mutates": ["x"]})
        with pytest.raises(ValueError):
            declared_effects({"reads": "not-a-list"})

    def test_unknown_effects_are_inexact(self):
        assert not UNKNOWN_EFFECTS.exact
        assert UNKNOWN_EFFECTS.reads == frozenset()


# ---------------------------------------------------------------------------
# Verifier rules, triggering + clean
# ---------------------------------------------------------------------------
def _clean_plan() -> RoundPlan:
    plan = RoundPlan("clean")
    plan.local("g1", _compute)
    plan.allreduce("s1", _payload("g1"))
    plan.master(_consume("s1"), name="m1")
    plan.returns("m1")
    return plan


class TestVerifyRules:
    def test_clean_plan_has_no_findings(self):
        report = verify_plan(_clean_plan())
        assert report.ok
        assert not report.findings
        assert report.rounds == 1

    def test_pln001_race_read_before_join(self):
        plan = RoundPlan("race")
        plan.local("g1", _compute)
        plan.allreduce("s1", _payload("g1"), overlap=True)
        plan.master(_consume("s1"), name="m1")
        plan.join()
        report = verify_plan(plan)
        assert not report.ok
        assert [f.rule for f in report.errors] == ["PLN001"]

    def test_pln002_unjoined_at_end(self):
        plan = RoundPlan("unjoined")
        plan.local("g1", _compute)
        plan.allreduce("s1", _payload("g1"), overlap=True)
        plan.local("hide", _compute)
        report = verify_plan(plan)
        assert [f.rule for f in report.errors] == ["PLN002"]

    def test_pln003_dead_join_is_warning_only(self):
        plan = _clean_plan()
        plan.steps.append(Join())
        report = verify_plan(plan)
        assert report.ok  # the runtime join() is a no-op, so ok must hold
        assert [f.rule for f in report.warnings] == ["PLN003"]

    def test_pln004_declared_count_mismatch(self):
        # declared_rounds is normally derived from the steps; a broken
        # rewrite tool (or subclass) that misdeclares is what PLN004 catches.
        class Misdeclared(RoundPlan):
            @property
            def declared_rounds(self):
                return 7

        plan = Misdeclared("misdeclared")
        plan.local("g1", _compute)
        plan.allreduce("s1", _payload("g1"))
        report = verify_plan(plan)
        assert not report.ok
        assert {f.rule for f in report.errors} == {"PLN004"}

    def test_pln005_degrade_without_alive_workers_consumer(self):
        plan = RoundPlan("degrade", on_failure="degrade")
        plan.local("g1", _compute)
        plan.allreduce("total", _payload("g1"))
        plan.master(_consume("total"), name="m1")
        report = verify_plan(plan)
        assert report.ok
        assert [f.rule for f in report.warnings] == ["PLN005"]

        consuming = RoundPlan("degrade-ok", on_failure="degrade")
        consuming.local("g1", _compute)
        consuming.allreduce("total", _payload("g1"))
        consuming.master(_reweight, name="m1")
        assert not verify_plan(consuming).findings

    def test_pln006_stall_under_permanent_crash(self):
        plan = RoundPlan("stall", on_failure="stall")
        plan.local("g1", _compute)
        plan.allreduce("s1", _payload("g1"))
        profile = ClusterProfile(n_workers=4, faults="0@1.0")
        report = verify_plan(plan, profile=profile)
        assert not report.ok
        assert [f.rule for f in report.errors] == ["PLN006"]
        # without the profile the same plan is structurally fine
        assert verify_plan(plan).ok

    def test_pln006_raise_policy_is_warning(self):
        plan = _clean_plan()  # on_failure defaults to "raise"
        profile = ClusterProfile(n_workers=4, faults="0@1.0")
        report = verify_plan(plan, profile=profile)
        assert report.ok
        assert [f.rule for f in report.warnings] == ["PLN006"]

    def test_pln006_degrade_with_no_survivors(self):
        plan = RoundPlan("doomed", on_failure="degrade")
        plan.local("g1", _compute)
        plan.allreduce("total", _payload("g1"))
        plan.master(_reweight, name="m1")
        profile = ClusterProfile(n_workers=4, faults="0@1,1@1,2@1,3@1")
        report = verify_plan(plan, profile=profile)
        assert not report.ok
        assert [f.rule for f in report.errors] == ["PLN006"]

    def test_pln007_leading_joint_collective(self):
        plan = RoundPlan("joint")
        plan.local("g1", _compute)
        plan.allreduce("s1", _payload("g1"))
        plan.steps[1].joint_with_previous = True
        report = verify_plan(plan)
        assert report.ok
        assert [f.rule for f in report.warnings] == ["PLN007"]

    def test_pln008_unknown_footprint_while_in_flight(self):
        plan = RoundPlan("opaque")
        plan.local("g1", _compute)
        plan.allreduce("s1", _payload("g1"), overlap=True)
        plan.master(_OPAQUE["_opaque"], name="m1")
        plan.join()
        report = verify_plan(plan)
        assert not report.ok
        assert "PLN008" in {f.rule for f in report.errors}
        # the same opaque thunk with nothing in flight is accepted
        safe = RoundPlan("opaque-safe")
        safe.local("g1", _compute)
        safe.allreduce("s1", _payload("g1"))
        safe.master(_OPAQUE["_opaque"], name="m1")
        assert verify_plan(safe).ok

    def test_pln009_read_before_write(self):
        plan = RoundPlan("missing")
        plan.master(_consume("nope"), name="m1")
        report = verify_plan(plan)
        assert report.ok  # warning: the executor would KeyError, not race
        assert [f.rule for f in report.warnings] == ["PLN009"]
        # keys provided by the initial context are considered written
        seeded = RoundPlan("seeded", context={"nope": 1.0})
        seeded.master(_consume("nope"), name="m1")
        assert not verify_plan(seeded).findings

    def test_report_describe_is_json_serializable(self):
        plan, _ = _fitted_plan("giant")
        report = verify_plan(plan)
        payload = json.loads(json.dumps(report.describe()))
        assert payload["plan"] == plan.name
        assert payload["ok"] is True
        assert len(payload["steps"]) == len(plan.flattened())


# ---------------------------------------------------------------------------
# All registered solver plans verify clean with exact footprints
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", SYNC_SOLVERS)
def test_solver_plans_verify_clean(name):
    plan, _ = _fitted_plan(name)
    report = verify_plan(plan)
    assert report.ok, report.reason()
    assert not report.findings
    assert all(entry["exact"] for entry in report.step_effects)


# ---------------------------------------------------------------------------
# Static verification replaces trial execution in the proposer
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", SYNC_SOLVERS)
def test_overlap_proposals_static_equals_execute(name):
    plan, cluster = _fitted_plan(name)
    static = propose_overlap(plan, verify="static")
    executed = propose_overlap(plan, verify_on=cluster, verify="execute")
    assert [(c["name"], c["status"]) for c in static.candidates] == [
        (c["name"], c["status"]) for c in executed.candidates
    ]
    assert static.proposed.signature() == executed.proposed.signature()
    assert static.verify_mode == "static"
    assert executed.verify_mode == "execute"


def test_overlap_both_mode_backstops_static_with_execution():
    plan, cluster = _fitted_plan("inexact_dane")
    both = propose_overlap(plan, verify="both", verify_on=cluster)
    assert both.verify_mode == "both"
    assert both.verified


def test_overlap_execute_mode_requires_a_cluster():
    plan, _ = _fitted_plan("giant")
    with pytest.raises(ValueError):
        propose_overlap(plan, verify="execute")
    with pytest.raises(ValueError):
        propose_overlap(plan, verify="both")
    with pytest.raises(ValueError):
        propose_overlap(plan, verify="bogus")


# ---------------------------------------------------------------------------
# The effect-verified hoist proposer (GIANT pattern)
# ---------------------------------------------------------------------------
def _unhoisted_giant():
    from repro.baselines.giant import GIANT

    cluster = _cluster()
    solver = GIANT(max_epochs=1, overlap_gradient=True)
    solver.fit(cluster)
    overlap_plan = solver._plan_epoch(cluster, 0)

    plan = overlap_plan.structural_copy("giant-unhoisted")
    grad_sum = next(
        i
        for i, s in enumerate(plan.steps)
        if isinstance(s, Collective) and s.name == "grad_sum"
    )
    plan.steps[grad_sum].overlap = False
    plan.steps.pop(
        next(i for i, s in enumerate(plan.steps) if isinstance(s, Join))
    )
    moved = plan.steps.pop(
        next(
            i
            for i, s in enumerate(plan.steps)
            if isinstance(s, LocalStep) and s.name == "value_at_w"
        )
    )
    plan.steps.insert(
        next(
            i
            for i, s in enumerate(plan.steps)
            if isinstance(s, LocalStep) and s.name == "line_values"
        ),
        moved,
    )
    return plan, overlap_plan, cluster


def test_hoist_recovers_hand_written_giant_overlap():
    unhoisted, overlap_plan, _ = _unhoisted_giant()
    proposal = propose_hoist(unhoisted)
    assert proposal.n_applied == 1
    applied = [c for c in proposal.candidates if c["status"] == "proposed"]
    assert [(c["collective"], c["local"]) for c in applied] == [
        ("grad_sum", "value_at_w")
    ]
    assert proposal.proposed.signature() == overlap_plan.signature()
    assert verify_plan(proposal.proposed).ok


def test_hoist_both_mode_executes_the_rewrite():
    unhoisted, _, cluster = _unhoisted_giant()
    proposal = propose_hoist(unhoisted, verify="both", verify_on=cluster)
    assert proposal.n_applied == 1
    execution = execute_plan(cluster, proposal.proposed)
    assert execution.rounds == unhoisted.declared_rounds


def test_hoist_refuses_execute_only_verification():
    plan, cluster = _fitted_plan("giant")
    with pytest.raises(ValueError):
        propose_hoist(plan, verify="execute", verify_on=cluster)


def test_hoist_leaves_plans_without_candidates_alone():
    plan, _ = _fitted_plan("newton_admm")
    proposal = propose_hoist(plan)
    assert proposal.n_applied == 0
    assert proposal.proposed.signature() == plan.signature()
