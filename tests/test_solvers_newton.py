"""Tests for the line search and the inexact Newton-CG solver (Algorithms 1/3)."""

import numpy as np
import pytest

from repro.objectives.base import RegularizedObjective
from repro.objectives.least_squares import LeastSquares
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.base import CountingObjective
from repro.solvers.line_search import armijo_backtracking
from repro.solvers.newton_cg import NewtonCG


def quadratic(w):
    return float(0.5 * w @ w)


class TestArmijoBacktracking:
    def test_full_step_accepted_for_newton_on_quadratic(self):
        x = np.array([3.0, -2.0])
        g = x.copy()
        p = -x  # exact Newton step
        result = armijo_backtracking(quadratic, x, p, g, quadratic(x))
        assert result.success
        assert result.step_size == 1.0
        assert result.f_new == pytest.approx(0.0)

    def test_backtracks_on_too_long_direction(self):
        x = np.array([1.0, 1.0])
        g = x.copy()
        p = -100.0 * x
        result = armijo_backtracking(quadratic, x, p, g, quadratic(x))
        assert result.success
        assert result.step_size < 1.0
        assert result.f_new < quadratic(x)

    def test_non_descent_direction_falls_back_to_gradient(self):
        x = np.array([1.0, 0.0])
        g = x.copy()
        p = g.copy()  # ascent direction
        result = armijo_backtracking(quadratic, x, p, g, quadratic(x))
        assert result.f_new <= quadratic(x)

    def test_computes_fx_if_missing(self):
        x = np.array([2.0])
        result = armijo_backtracking(quadratic, x, -x, x)
        assert result.success

    def test_zero_step_when_no_progress_possible(self):
        # minimum already reached -> every step increases f
        x = np.zeros(2)
        g = np.zeros(2)
        result = armijo_backtracking(
            quadratic, x, np.array([1.0, 0.0]), g, 0.0, accept_on_failure=False
        )
        assert result.step_size == 0.0
        assert result.f_new == 0.0

    def test_evaluation_count_bounded(self):
        x = np.array([1.0, 1.0])
        result = armijo_backtracking(
            quadratic, x, -1e6 * x, x, quadratic(x), max_iter=10
        )
        assert result.n_evaluations <= 12

    def test_invalid_parameters_rejected(self):
        x = np.zeros(2)
        with pytest.raises(ValueError):
            armijo_backtracking(quadratic, x, -x, x, alpha0=-1.0)
        with pytest.raises(ValueError):
            armijo_backtracking(quadratic, x, -x, x, beta=2.0)
        with pytest.raises(ValueError):
            armijo_backtracking(quadratic, x, -x, x, max_iter=-3)


@pytest.fixture()
def softmax_objective():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((80, 6))
    y = rng.integers(0, 3, size=80)
    loss = SoftmaxCrossEntropy(X, y, 3)
    return RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-3))


class TestNewtonCG:
    def test_quadratic_solved_in_one_iteration(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((40, 5))
        b = rng.standard_normal(40)
        ls = LeastSquares(X, b)
        obj = RegularizedObjective(ls, L2Regularizer(5, 0.1))
        result = NewtonCG(max_iterations=5, cg_max_iter=50, cg_tol=1e-12).minimize(obj)
        # closed-form: (scale X'X + 0.1 I) w = scale X'b
        w_star = ls.solve_normal_equations(reg=0.1)
        np.testing.assert_allclose(result.w, w_star, atol=1e-5)
        assert result.n_iterations <= 2

    def test_softmax_converges_to_small_gradient(self, softmax_objective):
        result = NewtonCG(
            max_iterations=50, grad_tol=1e-8, cg_max_iter=50, cg_tol=1e-8
        ).minimize(softmax_objective)
        assert result.converged
        assert result.grad_norm <= 1e-6

    def test_objective_monotone_decrease(self, softmax_objective):
        result = NewtonCG(max_iterations=20, cg_max_iter=10).minimize(softmax_objective)
        objs = result.objective_trace()
        assert np.all(np.diff(objs) <= 1e-12)

    def test_warm_start_at_optimum_stops_immediately(self, softmax_objective):
        first = NewtonCG(max_iterations=50, cg_max_iter=50, grad_tol=1e-10).minimize(
            softmax_objective
        )
        second = NewtonCG(max_iterations=50, grad_tol=1e-6).minimize(
            softmax_objective, first.w
        )
        assert second.n_iterations == 0
        assert second.converged

    def test_records_contain_cg_diagnostics(self, softmax_objective):
        result = NewtonCG(max_iterations=3, cg_max_iter=5).minimize(softmax_objective)
        assert len(result.records) == result.n_iterations
        for rec in result.records:
            assert "cg_iterations" in rec.extras
            assert rec.extras["cg_iterations"] <= 5

    def test_small_cg_budget_still_descends(self, softmax_objective):
        result = NewtonCG(max_iterations=10, cg_max_iter=2).minimize(softmax_objective)
        assert result.objective < softmax_objective.value(np.zeros(softmax_objective.dim))

    def test_callback_invoked(self, softmax_objective):
        calls = []
        NewtonCG(max_iterations=3).minimize(
            softmax_objective, callback=lambda rec, w: calls.append(rec.iteration)
        )
        assert calls == list(range(len(calls)))
        assert len(calls) >= 1

    def test_wrong_w0_length_rejected(self, softmax_objective):
        with pytest.raises(ValueError):
            NewtonCG().minimize(softmax_objective, np.zeros(3))

    def test_invalid_cg_budget_rejected(self):
        with pytest.raises(ValueError):
            NewtonCG(cg_max_iter=0)

    def test_rel_obj_tol_stops_early(self, softmax_objective):
        result = NewtonCG(max_iterations=100, rel_obj_tol=1e-2, grad_tol=0.0).minimize(
            softmax_objective
        )
        assert result.n_iterations < 100

    def test_counting_objective_tracks_evaluations(self, softmax_objective):
        counted = CountingObjective(softmax_objective)
        NewtonCG(max_iterations=3, cg_max_iter=5).minimize(counted)
        counters = counted.counters()
        assert counters["n_gradient"] >= 3
        assert counters["n_hvp"] >= 3
        assert counters["flops"] > 0


class TestCountingObjective:
    def test_counts_and_reset(self, softmax_objective):
        counted = CountingObjective(softmax_objective)
        w = np.zeros(counted.dim)
        counted.value(w)
        counted.gradient(w)
        counted.hvp(w, np.ones(counted.dim))
        counted.value_and_gradient(w)
        c = counted.counters()
        assert c["n_value"] == 2
        assert c["n_gradient"] == 2
        assert c["n_hvp"] == 1
        counted.reset_counters()
        assert counted.counters()["flops"] == 0.0

    def test_values_match_base(self, softmax_objective):
        counted = CountingObjective(softmax_objective)
        w = np.random.default_rng(2).standard_normal(counted.dim) * 0.1
        np.testing.assert_allclose(counted.value(w), softmax_objective.value(w))
        np.testing.assert_allclose(counted.gradient(w), softmax_objective.gradient(w))

    def test_add_flops(self, softmax_objective):
        counted = CountingObjective(softmax_objective)
        counted.add_flops(100.0)
        assert counted.flops == 100.0
        with pytest.raises(ValueError):
            counted.add_flops(-1.0)
