"""Tests for trust-region Newton, sub-sampled Newton and Newton-Sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objectives.base import RegularizedObjective
from repro.objectives.least_squares import LeastSquares
from repro.objectives.logistic import BinaryLogistic
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.newton_cg import NewtonCG
from repro.solvers.newton_sketch import NewtonSketch
from repro.solvers.subsampled_newton import SubsampledNewton
from repro.solvers.trust_region import TrustRegionNewton, steihaug_cg


def quadratic_objective(dim=8, cond=20.0, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    eigs = np.logspace(0, np.log10(cond), dim)
    A = Q @ np.diag(np.sqrt(eigs)) @ Q.T
    b = rng.standard_normal(dim)
    loss = LeastSquares(A, b, scale="sum")
    return loss, loss.solve_normal_equations()


def softmax_problem(n=120, p=10, C=3, lam=1e-2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, p))
    y = rng.integers(0, C, size=n)
    loss = SoftmaxCrossEntropy(X, y, C)
    return RegularizedObjective(loss, L2Regularizer(loss.dim, lam))


def logistic_problem(n=150, p=12, lam=1e-2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, p))
    w_true = rng.standard_normal(p)
    y = (X @ w_true + 0.3 * rng.standard_normal(n) > 0).astype(int)
    loss = BinaryLogistic(X, y)
    return RegularizedObjective(loss, L2Regularizer(p, lam))


class TestSteihaugCG:
    def test_interior_solution_matches_newton_step(self):
        rng = np.random.default_rng(0)
        Q, _ = np.linalg.qr(rng.standard_normal((6, 6)))
        H = Q @ np.diag(np.linspace(1, 5, 6)) @ Q.T
        g = rng.standard_normal(6)
        exact = -np.linalg.solve(H, g)
        result = steihaug_cg(lambda v: H @ v, g, radius=1e6, tol=1e-12, max_iter=100)
        assert not result.hit_boundary
        np.testing.assert_allclose(result.p, exact, atol=1e-8)

    def test_boundary_step_has_radius_norm(self):
        rng = np.random.default_rng(1)
        H = np.eye(5)
        g = rng.standard_normal(5) * 10
        radius = 0.1
        result = steihaug_cg(lambda v: H @ v, g, radius=radius, max_iter=50)
        assert result.hit_boundary
        assert np.linalg.norm(result.p) == pytest.approx(radius, rel=1e-8)

    def test_negative_curvature_goes_to_boundary(self):
        H = np.diag([1.0, -2.0])
        g = np.array([0.5, 0.5])
        result = steihaug_cg(lambda v: H @ v, g, radius=1.0, max_iter=10)
        assert result.negative_curvature
        assert np.linalg.norm(result.p) == pytest.approx(1.0, rel=1e-8)

    def test_zero_gradient_returns_zero_step(self):
        result = steihaug_cg(lambda v: v, np.zeros(4), radius=1.0)
        np.testing.assert_array_equal(result.p, np.zeros(4))
        assert result.n_iterations == 0

    def test_model_decrease_nonnegative(self):
        rng = np.random.default_rng(3)
        H = np.diag(np.linspace(0.5, 4.0, 7))
        g = rng.standard_normal(7)
        result = steihaug_cg(lambda v: H @ v, g, radius=0.5, max_iter=20)
        assert result.model_decrease >= 0

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            steihaug_cg(lambda v: v, np.ones(3), radius=0.0)


class TestTrustRegionNewton:
    def test_converges_on_quadratic(self):
        loss, w_star = quadratic_objective()
        solver = TrustRegionNewton(max_iterations=100, grad_tol=1e-10, cg_max_iter=50)
        result = solver.minimize(loss)
        assert result.converged
        np.testing.assert_allclose(result.w, w_star, atol=1e-5)

    def test_converges_on_softmax(self):
        objective = softmax_problem()
        reference = NewtonCG(max_iterations=100, grad_tol=1e-10, cg_max_iter=100, cg_tol=1e-10)
        f_star = reference.minimize(objective).objective
        solver = TrustRegionNewton(max_iterations=100, grad_tol=1e-8, cg_max_iter=50)
        result = solver.minimize(objective)
        assert result.objective == pytest.approx(f_star, abs=1e-6)

    def test_objective_monotone_over_accepted_steps(self):
        objective = softmax_problem(seed=3)
        result = TrustRegionNewton(max_iterations=30).minimize(objective)
        objs = [r.objective for r in result.records if r.extras.get("accepted")]
        assert all(b <= a + 1e-12 for a, b in zip(objs, objs[1:]))

    def test_records_contain_radius_and_ratio(self):
        objective = softmax_problem(seed=4)
        result = TrustRegionNewton(max_iterations=5).minimize(objective)
        assert result.records
        for record in result.records:
            assert "radius" in record.extras
            assert "ratio" in record.extras

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            TrustRegionNewton(initial_radius=0.0)
        with pytest.raises(ValueError):
            TrustRegionNewton(initial_radius=10.0, max_radius=1.0)
        with pytest.raises(ValueError):
            TrustRegionNewton(eta=0.5)

    def test_callback_invoked(self):
        objective = softmax_problem(seed=5)
        seen = []
        TrustRegionNewton(max_iterations=3).minimize(
            objective, callback=lambda rec, w: seen.append(rec.iteration)
        )
        assert seen == list(range(len(seen)))

    def test_w0_respected(self):
        objective = softmax_problem(seed=6)
        w0 = np.full(objective.dim, 0.05)
        result = TrustRegionNewton(max_iterations=1).minimize(objective, w0)
        assert result.w.shape == w0.shape


class TestSubsampledNewton:
    def test_full_fraction_matches_newton_cg(self):
        objective = softmax_problem(seed=1)
        newton = NewtonCG(max_iterations=40, grad_tol=1e-9, cg_max_iter=50, cg_tol=1e-8)
        sub = SubsampledNewton(
            hessian_sample_fraction=1.0,
            max_iterations=40,
            grad_tol=1e-9,
            cg_max_iter=50,
            cg_tol=1e-8,
        )
        f_newton = newton.minimize(objective).objective
        f_sub = sub.minimize(objective).objective
        assert f_sub == pytest.approx(f_newton, abs=1e-6)

    def test_subsampled_reaches_good_objective(self):
        objective = softmax_problem(n=300, seed=2)
        reference = NewtonCG(max_iterations=80, grad_tol=1e-10, cg_max_iter=80, cg_tol=1e-10)
        f_star = reference.minimize(objective).objective
        solver = SubsampledNewton(
            hessian_sample_fraction=0.3,
            max_iterations=60,
            grad_tol=1e-8,
            cg_max_iter=25,
            cg_tol=1e-6,
            random_state=0,
        )
        result = solver.minimize(objective)
        assert result.objective <= f_star + 1e-3

    def test_works_on_logistic(self):
        objective = logistic_problem()
        result = SubsampledNewton(
            hessian_sample_fraction=0.5, max_iterations=30, random_state=1
        ).minimize(objective)
        assert np.isfinite(result.objective)
        assert result.grad_norm < 1e-2

    def test_deterministic_given_seed(self):
        objective = softmax_problem(seed=7)
        a = SubsampledNewton(hessian_sample_fraction=0.2, max_iterations=10, random_state=3)
        b = SubsampledNewton(hessian_sample_fraction=0.2, max_iterations=10, random_state=3)
        np.testing.assert_array_equal(a.minimize(objective).w, b.minimize(objective).w)

    def test_sample_size_bounds(self):
        solver = SubsampledNewton(hessian_sample_fraction=0.01, min_hessian_samples=25)
        assert solver._sample_size(1000) == 25
        assert solver._sample_size(10) == 10
        solver = SubsampledNewton(hessian_sample_fraction=0.5)
        assert solver._sample_size(100) == 50

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SubsampledNewton(hessian_sample_fraction=0.0)
        with pytest.raises(ValueError):
            SubsampledNewton(hessian_sample_fraction=1.5)
        with pytest.raises(ValueError):
            SubsampledNewton(min_hessian_samples=0)

    def test_rejects_objective_without_minibatch(self):
        class Opaque:
            dim = 3
            n_samples = 10

            def value(self, w):
                return 0.0

            def gradient(self, w):
                return np.zeros(3)

            def hvp(self, w, v):
                return v

            def value_and_gradient(self, w):
                return 0.0, np.zeros(3)

            def initial_point(self):
                return np.zeros(3)

        with pytest.raises(TypeError):
            SubsampledNewton().minimize(Opaque())

    def test_hessian_samples_recorded(self):
        objective = softmax_problem(seed=8)
        result = SubsampledNewton(
            hessian_sample_fraction=0.25, max_iterations=3, random_state=0
        ).minimize(objective)
        assert result.info["hessian_sample_size"] == 30
        for record in result.records:
            assert record.extras["hessian_samples"] == 30


class TestNewtonSketch:
    def test_large_sketch_matches_newton_on_logistic(self):
        objective = logistic_problem(n=200, p=8, seed=3)
        newton = NewtonCG(max_iterations=50, grad_tol=1e-10, cg_max_iter=60, cg_tol=1e-10)
        f_star = newton.minimize(objective).objective
        sketchy = NewtonSketch(
            sketch_size=200,
            max_iterations=50,
            grad_tol=1e-8,
            cg_max_iter=60,
            cg_tol=1e-10,
            random_state=0,
        )
        result = sketchy.minimize(objective)
        assert result.objective == pytest.approx(f_star, abs=1e-5)

    def test_small_sketch_still_converges_on_least_squares(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((300, 6))
        b = X @ rng.standard_normal(6) + 0.1 * rng.standard_normal(300)
        loss = LeastSquares(X, b)
        objective = RegularizedObjective(loss, L2Regularizer(6, 1e-3))
        result = NewtonSketch(
            sketch_size=60, max_iterations=60, grad_tol=1e-8, random_state=1
        ).minimize(objective)
        assert result.grad_norm < 1e-6

    @pytest.mark.parametrize("kind", ["gaussian", "count", "rows", "srht"])
    def test_all_sketch_kinds_run(self, kind):
        objective = logistic_problem(n=80, p=5, seed=5)
        result = NewtonSketch(
            sketch_size=40, sketch_kind=kind, max_iterations=15, random_state=0
        ).minimize(objective)
        assert np.isfinite(result.objective)

    def test_rejects_softmax_objective(self):
        objective = softmax_problem()
        with pytest.raises(TypeError):
            NewtonSketch().minimize(objective)

    def test_invalid_sketch_size(self):
        with pytest.raises(ValueError):
            NewtonSketch(sketch_size=0)

    def test_sketch_rows_recorded(self):
        objective = logistic_problem(n=50, p=4, seed=6)
        result = NewtonSketch(sketch_size=30, max_iterations=2, random_state=0).minimize(
            objective
        )
        for record in result.records:
            assert record.extras["sketch_rows"] == 30

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_objective_never_increases_much(self, seed):
        objective = logistic_problem(n=60, p=4, seed=seed)
        result = NewtonSketch(sketch_size=30, max_iterations=10, random_state=seed).minimize(
            objective
        )
        objs = [r.objective for r in result.records]
        if len(objs) >= 2:
            # Armijo line search guarantees monotone decrease.
            assert all(b <= a + 1e-10 for a, b in zip(objs, objs[1:]))


class TestHessianSqrtFactors:
    def test_logistic_sqrt_reconstructs_hessian(self):
        objective = logistic_problem(n=40, p=5, lam=0.0, seed=7).loss
        w = np.random.default_rng(0).standard_normal(5) * 0.3
        A = objective.hessian_sqrt(w)
        np.testing.assert_allclose(A.T @ A, objective.hessian(w), atol=1e-8)

    def test_least_squares_sqrt_reconstructs_hessian(self):
        rng = np.random.default_rng(8)
        X = rng.standard_normal((30, 4))
        loss = LeastSquares(X, rng.standard_normal(30))
        A = loss.hessian_sqrt(np.zeros(4))
        np.testing.assert_allclose(A.T @ A, loss.hessian(np.zeros(4)), atol=1e-10)

    def test_logistic_minibatch_is_mean_over_batch(self):
        objective = logistic_problem(n=60, p=5, seed=9).loss
        idx = np.arange(10)
        batch = objective.minibatch(idx)
        assert batch.n_samples == 10
        w = np.zeros(5)
        manual = BinaryLogistic(objective.X[idx], objective.y[idx]).value(w)
        assert batch.value(w) == pytest.approx(manual)

    def test_least_squares_minibatch(self):
        rng = np.random.default_rng(10)
        X = rng.standard_normal((20, 3))
        b = rng.standard_normal(20)
        loss = LeastSquares(X, b)
        batch = loss.minibatch(np.array([0, 1, 2, 3]))
        assert batch.n_samples == 4
