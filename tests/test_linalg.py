"""Tests for conjugate gradient, linear operators and spectrum estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.cg import conjugate_gradient
from repro.linalg.condition import (
    condition_number_estimate,
    power_iteration,
    smallest_eigenvalue,
)
from repro.linalg.operators import (
    DiagonalOperator,
    HessianOperator,
    LinearOperator,
    MatrixOperator,
    ShiftedOperator,
)
from repro.objectives.softmax import SoftmaxCrossEntropy


def random_spd(dim, cond=10.0, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    eigs = np.logspace(0, np.log10(cond), dim)
    return Q @ np.diag(eigs) @ Q.T


class TestOperators:
    def test_matrix_operator_matches_matmul(self):
        A = random_spd(6)
        op = MatrixOperator(A)
        v = np.random.default_rng(1).standard_normal(6)
        np.testing.assert_allclose(op.matvec(v), A @ v)
        np.testing.assert_allclose(op @ v, A @ v)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            MatrixOperator(np.zeros((3, 4)))

    def test_matvec_counter(self):
        op = MatrixOperator(np.eye(3))
        op.matvec(np.ones(3))
        op.matvec(np.ones(3))
        assert op.n_matvecs == 2

    def test_wrong_length_rejected(self):
        op = MatrixOperator(np.eye(3))
        with pytest.raises(ValueError):
            op.matvec(np.ones(4))

    def test_to_dense_round_trip(self):
        A = random_spd(5)
        np.testing.assert_allclose(MatrixOperator(A).to_dense(), A, atol=1e-12)

    def test_diagonal_operator(self):
        d = np.array([1.0, 2.0, 3.0])
        op = DiagonalOperator(d)
        np.testing.assert_allclose(op.matvec(np.ones(3)), d)

    def test_shifted_operator(self):
        A = random_spd(4)
        op = ShiftedOperator(MatrixOperator(A), 2.5)
        v = np.random.default_rng(2).standard_normal(4)
        np.testing.assert_allclose(op.matvec(v), A @ v + 2.5 * v)

    def test_hessian_operator_matches_hvp(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((20, 4))
        y = rng.integers(0, 3, size=20)
        obj = SoftmaxCrossEntropy(X, y, 3)
        w = rng.standard_normal(obj.dim)
        op = HessianOperator(obj, w)
        v = rng.standard_normal(obj.dim)
        np.testing.assert_allclose(op.matvec(v), obj.hvp(w, v))

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            LinearOperator(0, lambda v: v)


class TestConjugateGradient:
    def test_solves_spd_system_exactly_with_enough_iterations(self):
        A = random_spd(8, cond=50.0)
        b = np.random.default_rng(0).standard_normal(8)
        result = conjugate_gradient(MatrixOperator(A), b, tol=1e-12, max_iter=100)
        np.testing.assert_allclose(result.x, np.linalg.solve(A, b), atol=1e-6)
        assert result.converged

    def test_zero_rhs(self):
        result = conjugate_gradient(MatrixOperator(np.eye(4)), np.zeros(4))
        np.testing.assert_allclose(result.x, 0.0)
        assert result.converged
        assert result.n_iterations == 0

    def test_identity_system_one_iteration(self):
        b = np.random.default_rng(1).standard_normal(5)
        result = conjugate_gradient(MatrixOperator(np.eye(5)), b, tol=1e-12, max_iter=10)
        np.testing.assert_allclose(result.x, b, atol=1e-12)
        assert result.n_iterations <= 2

    def test_iteration_budget_respected(self):
        A = random_spd(30, cond=1e4, seed=2)
        b = np.random.default_rng(2).standard_normal(30)
        result = conjugate_gradient(MatrixOperator(A), b, tol=1e-14, max_iter=3)
        assert result.n_iterations <= 3

    def test_relative_residual_reported(self):
        A = random_spd(10)
        b = np.random.default_rng(3).standard_normal(10)
        result = conjugate_gradient(MatrixOperator(A), b, tol=1e-2, max_iter=100)
        assert result.relative_residual <= 1e-2 + 1e-12
        assert len(result.residual_history) == result.n_iterations + 1

    def test_callable_matvec_accepted(self):
        A = random_spd(6)
        b = np.ones(6)
        result = conjugate_gradient(lambda v: A @ v, b, tol=1e-10, max_iter=50)
        np.testing.assert_allclose(result.x, np.linalg.solve(A, b), atol=1e-6)

    def test_warm_start(self):
        A = random_spd(6)
        b = np.random.default_rng(4).standard_normal(6)
        x_star = np.linalg.solve(A, b)
        result = conjugate_gradient(MatrixOperator(A), b, x0=x_star, tol=1e-8, max_iter=5)
        assert result.converged
        assert result.n_iterations == 0

    def test_jacobi_preconditioner_helps_on_diagonal_system(self):
        d = np.logspace(0, 6, 40)
        A = np.diag(d)
        b = np.ones(40)
        plain = conjugate_gradient(MatrixOperator(A), b, tol=1e-8, max_iter=200)
        prec = conjugate_gradient(
            MatrixOperator(A),
            b,
            tol=1e-8,
            max_iter=200,
            preconditioner=DiagonalOperator(1.0 / d),
        )
        assert prec.n_iterations <= plain.n_iterations

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            conjugate_gradient(MatrixOperator(np.eye(2)), np.ones(2), max_iter=-1)
        with pytest.raises(ValueError):
            conjugate_gradient(MatrixOperator(np.eye(2)), np.ones(2), tol=-0.1)

    def test_residuals_monotone_enough(self):
        A = random_spd(12, cond=100.0, seed=5)
        b = np.random.default_rng(5).standard_normal(12)
        result = conjugate_gradient(MatrixOperator(A), b, tol=1e-12, max_iter=50)
        history = np.array(result.residual_history)
        assert history[-1] < history[0]

    @settings(max_examples=25, deadline=None)
    @given(dim=st.integers(2, 12), seed=st.integers(0, 1000))
    def test_property_solution_matches_numpy(self, dim, seed):
        A = random_spd(dim, cond=20.0, seed=seed)
        b = np.random.default_rng(seed).standard_normal(dim)
        result = conjugate_gradient(MatrixOperator(A), b, tol=1e-12, max_iter=200)
        np.testing.assert_allclose(result.x, np.linalg.solve(A, b), atol=1e-5)


class TestSpectrum:
    def test_power_iteration_finds_largest(self):
        A = np.diag([1.0, 5.0, 10.0, 2.0])
        lam, vec = power_iteration(MatrixOperator(A), random_state=0)
        assert lam == pytest.approx(10.0, rel=1e-4)
        assert abs(vec[2]) > 0.99

    def test_smallest_eigenvalue(self):
        A = np.diag([0.5, 5.0, 10.0])
        lam_min = smallest_eigenvalue(MatrixOperator(A), random_state=0)
        assert lam_min == pytest.approx(0.5, rel=1e-3)

    def test_condition_number_estimate(self):
        A = random_spd(10, cond=100.0, seed=7)
        est = condition_number_estimate(MatrixOperator(A), random_state=0)
        true = np.linalg.cond(A)
        assert 0.5 * true < est < 2.0 * true

    def test_zero_operator(self):
        op = LinearOperator(3, lambda v: np.zeros(3))
        lam, _ = power_iteration(op, random_state=0)
        assert lam == 0.0
