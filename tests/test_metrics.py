"""Tests for classification metrics, run traces and report formatting."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.classification import accuracy, confusion_matrix, error_rate
from repro.metrics.summary import format_series, format_table, relative_error
from repro.metrics.traces import (
    EpochRecord,
    RunTrace,
    average_epoch_time,
    speedup_ratio,
    time_to_objective,
    time_to_relative_objective,
)


class TestClassificationMetrics:
    def test_accuracy_basic(self):
        assert accuracy([0, 1, 2], [0, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_perfect_and_zero(self):
        assert accuracy([1, 1], [1, 1]) == 1.0
        assert accuracy([0, 0], [1, 1]) == 0.0

    def test_error_rate_complement(self):
        y_true = [0, 1, 0, 1]
        y_pred = [0, 0, 0, 1]
        assert accuracy(y_true, y_pred) + error_rate(y_true, y_pred) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_confusion_matrix(self):
        M = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2], 3)
        assert M[0, 0] == 1 and M[0, 1] == 1 and M[1, 1] == 1 and M[2, 2] == 1
        assert M.sum() == 4

    def test_confusion_matrix_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix([0], [0], 1)
        with pytest.raises(ValueError):
            confusion_matrix([0, 3], [0, 1], 3)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=1, max_size=50))
    def test_property_accuracy_bounds(self, labels):
        preds = list(reversed(labels))
        a = accuracy(labels, preds)
        assert 0.0 <= a <= 1.0
        M = confusion_matrix(labels, preds, 5)
        assert M.trace() == pytest.approx(a * len(labels))


def make_trace(objectives, times=None, accs=None, method="m", n_workers=4):
    times = times if times is not None else np.arange(1, len(objectives) + 1, dtype=float)
    records = []
    for i, obj in enumerate(objectives):
        records.append(
            EpochRecord(
                epoch=i + 1,
                objective=float(obj),
                modelled_time=float(times[i]),
                compute_time=float(times[i]) * 0.8,
                comm_time=float(times[i]) * 0.2,
                wall_time=float(times[i]) * 2,
                test_accuracy=float(accs[i]) if accs is not None else float("nan"),
                comm_rounds=i + 1,
            )
        )
    return RunTrace(method=method, dataset="d", n_workers=n_workers, records=records)


class TestRunTrace:
    def test_basic_accessors(self):
        trace = make_trace([3.0, 2.0, 1.0])
        assert trace.n_epochs == 3
        np.testing.assert_allclose(trace.objectives(), [3, 2, 1])
        np.testing.assert_allclose(trace.times(), [1, 2, 3])
        np.testing.assert_allclose(trace.times("wall"), [2, 4, 6])
        assert trace.final.objective == 1.0
        assert trace.best_objective() == 1.0
        assert trace.total_time() == 3.0

    def test_series(self):
        trace = make_trace([3.0, 2.0], accs=[0.5, 0.7])
        t, v = trace.series("test_accuracy")
        np.testing.assert_allclose(v, [0.5, 0.7])
        with pytest.raises(ValueError):
            trace.series("loss_landscape")

    def test_unknown_time_kind_rejected(self):
        with pytest.raises(ValueError):
            make_trace([1.0]).times("cpu")

    def test_empty_trace_final_raises(self):
        with pytest.raises(ValueError):
            RunTrace(method="m", dataset="d", n_workers=1).final

    def test_average_epoch_time(self):
        trace = make_trace([3, 2, 1], times=[2.0, 4.0, 6.0])
        assert average_epoch_time(trace) == pytest.approx(2.0)

    def test_average_epoch_time_empty(self):
        assert math.isnan(average_epoch_time(RunTrace("m", "d", 1)))


class TestTimeToTarget:
    def test_time_to_objective(self):
        trace = make_trace([3.0, 1.5, 0.5], times=[1.0, 2.0, 3.0])
        assert time_to_objective(trace, 2.0) == 2.0
        assert time_to_objective(trace, 0.5) == 3.0
        assert math.isinf(time_to_objective(trace, 0.1))

    def test_time_to_relative_objective(self):
        trace = make_trace([2.0, 1.2, 1.04, 1.0], times=[1, 2, 3, 4])
        # f_star = 1.0, theta = 0.05 -> target 1.05 reached at t=3
        assert time_to_relative_objective(trace, 1.0, theta=0.05) == 3.0

    def test_invalid_theta_rejected(self):
        with pytest.raises(ValueError):
            time_to_relative_objective(make_trace([1.0]), 1.0, theta=0.0)

    def test_speedup_ratio(self):
        fast = make_trace([2.0, 1.0], times=[1.0, 2.0])
        slow = make_trace([2.0, 1.5, 1.0], times=[2.0, 4.0, 6.0])
        ratio = speedup_ratio(slow, fast, f_star=1.0, theta=0.05)
        assert ratio == pytest.approx(3.0)

    def test_speedup_ratio_edge_cases(self):
        reaches = make_trace([1.0], times=[1.0])
        never = make_trace([5.0], times=[1.0])
        assert math.isnan(speedup_ratio(never, never, f_star=1.0))
        assert speedup_ratio(never, reaches, f_star=1.0) == math.inf
        assert speedup_ratio(reaches, never, f_star=1.0) == 0.0


class TestSummaryFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.000123}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="T")

    def test_format_table_missing_key(self):
        out = format_table([{"a": 1}], columns=["a", "b"])
        assert "b" in out

    def test_format_series_downsampling(self):
        x = list(range(100))
        y = list(range(100))
        out = format_series(x, y, max_points=10)
        assert len(out.splitlines()) <= 15
        assert "99" in out  # last point retained

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [1])

    def test_nan_and_inf_rendering(self):
        out = format_table([{"a": float("nan"), "b": float("inf")}])
        assert "nan" in out and "inf" in out

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
