"""Micro-batching engine: batched-scoring equivalence (S2) and hot swap.

The load-bearing claims pinned here:

* N requests scored as one stacked batch return, per request, results
  *bit-identical* to scoring each request alone, and bit-identical to
  ``SoftmaxCrossEntropy.predict_proba`` on the NumPy fp64 path.
* A batch of N requests issues exactly **one** forward pass (one ``matmul``
  + one ``fused_lse_probs``), asserted with :class:`TracingBackend`.
* A model hot swap during a stream of requests loses zero requests, and
  every result matches exactly one of the two versions — never a mixture.
"""

import threading
from concurrent.futures import wait

import numpy as np
import pytest

from repro.backend.numpy_backend import NumpyBackend
from repro.backend.testing import TracingBackend
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.serving.engine import (
    InferenceEngine,
    MicroBatcher,
    score_probabilities,
    validate_rows,
)
from repro.serving.errors import InferenceError
from repro.serving.registry import ModelRegistry

P, C = 12, 5  # features, classes


@pytest.fixture
def backend():
    return NumpyBackend()


def _model(registry_root, dtype=np.float64, name="m", seed=0):
    rng = np.random.default_rng(seed)
    registry = ModelRegistry(registry_root)
    w = rng.standard_normal(P * (C - 1)).astype(dtype)
    return registry, registry.publish(name, w, n_classes=C)


def _requests(n, rows_each=3, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((rows_each, P)) for _ in range(n)]


def _one_batch(batcher, requests, kind="proba"):
    """Force all requests into a single batch via the hold/release hook."""
    batcher.hold()
    futures = [batcher.submit(X, kind=kind) for X in requests]
    batcher.release()
    wait(futures, timeout=10.0)
    return [f.result() for f in futures]


class TestBatchedEquivalence:
    def test_batched_matches_individual_bit_exact_fp64(self, tmp_path, backend):
        _, model = _model(tmp_path)
        requests = _requests(8)
        batcher = MicroBatcher(backend, model, window_s=0.0)
        try:
            batched = _one_batch(batcher, requests)
        finally:
            batcher.close()
        assert batcher.stats.n_batches == 1, "requests were split across batches"
        for X, got in zip(requests, batched):
            alone = score_probabilities(backend, model, X)
            assert np.array_equal(got, alone), "batched != individual (fp64)"

    def test_batched_matches_objective_predict_proba(self, tmp_path, backend):
        """The serving path and the training objective agree bit-for-bit."""
        _, model = _model(tmp_path)
        requests = _requests(6)
        rng = np.random.default_rng(2)
        X_train = rng.standard_normal((20, P))
        y = rng.integers(0, C, size=20)
        objective = SoftmaxCrossEntropy(X_train, y, n_classes=C, backend=backend)
        batcher = MicroBatcher(backend, model, window_s=0.0)
        try:
            batched = _one_batch(batcher, requests)
        finally:
            batcher.close()
        for X, got in zip(requests, batched):
            reference = objective.predict_proba(model.weights, X)
            assert np.array_equal(got, reference)

    def test_fp32_model_scores_at_storage_precision(self, tmp_path, backend):
        """fp32 models score in fp32; batched remains identical to individual
        (same dtype, same ops) even though it differs from fp64 by ~1e-7."""
        _, model = _model(tmp_path, dtype=np.float32)
        requests = _requests(4)
        batcher = MicroBatcher(backend, model, window_s=0.0)
        try:
            batched = _one_batch(batcher, requests)
        finally:
            batcher.close()
        _, model64 = _model(tmp_path / "r64", dtype=np.float64, seed=0)
        for X, got in zip(requests, batched):
            assert np.array_equal(got, score_probabilities(backend, model, X))
            ref64 = score_probabilities(
                backend, model64, X
            )  # documented fp32-vs-fp64 tolerance (docs/serving.md)
            np.testing.assert_allclose(got, ref64, rtol=0, atol=5e-6)

    def test_probabilities_are_valid(self, tmp_path, backend):
        _, model = _model(tmp_path)
        probs = score_probabilities(backend, model, _requests(1, rows_each=50)[0])
        assert probs.shape == (50, C)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_predict_is_argmax_of_proba(self, tmp_path, backend):
        _, model = _model(tmp_path)
        requests = _requests(5)
        batcher = MicroBatcher(backend, model, window_s=0.0)
        try:
            labels = _one_batch(batcher, requests, kind="predict")
        finally:
            batcher.close()
        for X, got in zip(requests, labels):
            expected = np.argmax(score_probabilities(backend, model, X), axis=1)
            assert got.dtype == np.int64
            assert np.array_equal(got, expected)


class TestOneForwardPassPerBatch:
    def test_single_gemm_for_n_requests(self, tmp_path):
        """TracingBackend pins the op budget: a batch of N requests costs one
        matmul + one fused_lse_probs, not N of each."""
        tracing = TracingBackend()
        _, model = _model(tmp_path)
        batcher = MicroBatcher(tracing, model, window_s=0.0)
        try:
            batcher.hold()
            futures = [batcher.submit(X) for X in _requests(7)]
            tracing.reset()
            batcher.release()
            wait(futures, timeout=10.0)
        finally:
            batcher.close()
        assert batcher.stats.n_batches == 1
        assert tracing.calls["matmul"] == 1
        assert tracing.calls["fused_lse_probs"] == 1

    def test_per_request_baseline_costs_n_gemms(self, tmp_path):
        tracing = TracingBackend()
        _, model = _model(tmp_path)
        requests = _requests(7)
        tracing.reset()
        for X in requests:
            score_probabilities(tracing, model, X)
        assert tracing.calls["matmul"] == len(requests)
        assert tracing.calls["fused_lse_probs"] == len(requests)


class TestBatchingPolicy:
    def test_max_batch_rows_splits_batches(self, tmp_path, backend):
        _, model = _model(tmp_path)
        batcher = MicroBatcher(backend, model, window_s=0.0, max_batch_rows=7)
        try:
            results = _one_batch(batcher, _requests(6, rows_each=3))
        finally:
            batcher.close()
        assert len(results) == 6
        assert batcher.stats.n_batches >= 3  # at most 2 three-row requests fit
        assert all(size <= 7 for size in (batcher.stats.batch_sizes or [0]))

    def test_oversized_single_request_still_scores(self, tmp_path, backend):
        _, model = _model(tmp_path)
        big = _requests(1, rows_each=64)[0]
        batcher = MicroBatcher(backend, model, window_s=0.0, max_batch_rows=16)
        try:
            result = batcher.submit(big).result(timeout=10.0)
        finally:
            batcher.close()
        assert np.array_equal(result, score_probabilities(backend, model, big))

    def test_max_batch_requests_flushes_early(self, tmp_path, backend):
        _, model = _model(tmp_path)
        batcher = MicroBatcher(
            backend, model, window_s=10.0, max_batch_requests=4
        )  # window is huge: only the early flush can complete this in time
        try:
            results = _one_batch(batcher, _requests(4))
        finally:
            batcher.close()
        assert len(results) == 4

    def test_close_rejects_new_requests(self, tmp_path, backend):
        _, model = _model(tmp_path)
        batcher = MicroBatcher(backend, model, window_s=0.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(_requests(1)[0])

    def test_invalid_parameters(self, tmp_path, backend):
        _, model = _model(tmp_path)
        with pytest.raises(ValueError, match="window_s"):
            MicroBatcher(backend, model, window_s=-1.0)
        with pytest.raises(ValueError, match="max_batch_rows"):
            MicroBatcher(backend, model, max_batch_rows=0)
        batcher = MicroBatcher(backend, model, window_s=0.0)
        try:
            with pytest.raises(ValueError, match="kind"):
                batcher.submit(_requests(1)[0], kind="bogus")
        finally:
            batcher.close()


class TestHotSwap:
    def test_no_request_lost_and_no_torn_results(self, tmp_path, backend):
        """Swap models while threads stream requests: every future resolves,
        and each result matches exactly one version's reference output."""
        registry, model_v1 = _model(tmp_path)
        w2 = np.asarray(model_v1.weights) + 1.0
        model_v2 = registry.publish("m", w2, n_classes=C)
        X = _requests(1)[0]
        ref = {
            1: score_probabilities(backend, model_v1, X),
            2: score_probabilities(backend, model_v2, X),
        }
        assert not np.array_equal(ref[1], ref[2])

        batcher = MicroBatcher(backend, model_v1, window_s=0.0005)
        futures = []
        futures_lock = threading.Lock()
        stop = threading.Event()

        def submitter():
            while not stop.is_set():
                f = batcher.submit(X)
                with futures_lock:
                    futures.append(f)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        try:
            for t in threads:
                t.start()
            for _ in range(20):  # swap back and forth under load
                batcher.set_model(model_v2)
                batcher.set_model(model_v1)
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
            with futures_lock:
                pending = list(futures)
            done, not_done = wait(pending, timeout=30.0)
            assert not not_done, f"{len(not_done)} in-flight requests lost"
            for f in done:
                result = f.result()
                matches_v1 = np.array_equal(result, ref[1])
                matches_v2 = np.array_equal(result, ref[2])
                assert matches_v1 or matches_v2, "torn result: matches neither version"
        finally:
            stop.set()
            batcher.close()
        assert batcher.stats.swaps == 40
        assert batcher.stats.n_requests == len(pending)


class TestValidateRows:
    def test_row_vector_promoted(self):
        assert validate_rows(np.zeros(P), P).shape == (1, P)

    def test_list_input_accepted(self):
        assert validate_rows([[0.0] * P], P).shape == (1, P)

    @pytest.mark.parametrize(
        "rows, match",
        [
            (np.zeros((2, P + 1)), "features"),
            (np.zeros((0, P)), "non-empty"),
            (np.zeros((2, 2, 2)), "non-empty|2-D"),
            ([["a"] * P], "not numeric"),
            ([[np.nan] + [0.0] * (P - 1)], "NaN or Inf"),
        ],
    )
    def test_bad_rows_raise_inference_error(self, rows, match):
        with pytest.raises(InferenceError, match=match):
            validate_rows(rows, P)


class TestInferenceEngine:
    def test_batched_and_direct_agree(self, tmp_path, backend):
        _model(tmp_path)
        engine = InferenceEngine(
            ModelRegistry(tmp_path), backend=backend, window_s=0.0
        )
        try:
            X = _requests(1)[0]
            batched = engine.predict_proba("m", X)
            direct = engine.predict_proba("m", X, batched=False)
            assert np.array_equal(batched, direct)
            assert np.array_equal(
                engine.predict("m", X), engine.predict("m", X, batched=False)
            )
        finally:
            engine.close()

    def test_refresh_hot_swaps_to_new_version(self, tmp_path, backend):
        registry, _ = _model(tmp_path)
        engine = InferenceEngine(registry, backend=backend, window_s=0.0)
        try:
            assert engine.model("m").version == 1
            registry.publish("m", np.ones(P * (C - 1)), n_classes=C)
            assert engine.model("m").version == 1  # not yet refreshed
            engine.refresh("m")
            assert engine.model("m").version == 2
            stats = engine.stats()
            assert stats["models"]["m"]["version"] == 2
            assert stats["models"]["m"]["model_swaps"] == 1
        finally:
            engine.close()

    def test_stats_shape(self, tmp_path, backend):
        _model(tmp_path)
        engine = InferenceEngine(
            ModelRegistry(tmp_path), backend=backend, window_s=0.0
        )
        try:
            engine.predict_proba("m", _requests(1)[0])
            stats = engine.stats()
            assert stats["backend"] == backend.name
            assert stats["models"]["m"]["requests"] == 1
            assert stats["models"]["m"]["batches"] == 1
        finally:
            engine.close()
