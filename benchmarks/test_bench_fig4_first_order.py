"""Figure 4 — Newton-ADMM vs synchronous SGD: objective and test accuracy
against time on all four workloads (8 workers; 16 for the E18-like one)."""

import math

from conftest import run_once

from repro.harness.experiments import figure4_first_order_comparison


def test_figure4_first_order_comparison(benchmark):
    result = run_once(benchmark, figure4_first_order_comparison)
    rows = {r["dataset"]: r for r in result["rows"]}
    print("\n" + result["report"])

    assert set(rows) == {"HIGGS", "MNIST", "CIFAR-10", "E18"}
    for row in rows.values():
        # Newton-ADMM ends at an objective no worse than SGD's ...
        assert row["admm_final_obj"] <= row["sgd_final_obj"] + 1e-6
        # ... reaches SGD's final objective in finite modelled time ...
        assert math.isfinite(row["admm_time_to_sgd_obj_s"])
        # ... and is faster to that target (the paper's headline comparison).
        assert row["speedup_vs_sgd"] > 1.0
        # Accuracy is at least comparable.
        assert row["admm_test_acc"] >= row["sgd_test_acc"] - 0.05
