"""Ablation — worker crash/restart under identical fault schedules: strict
synchronous Newton-ADMM aborts (or stalls for the restart) while the
quorum-based asynchronous variant rides through; the report carries the
modelled time delta each strategy pays for the same crash."""

import math

from conftest import run_once

from repro.harness.experiments import ablation_faults


def test_ablation_faults(benchmark):
    result = run_once(benchmark, ablation_faults)
    rows = {(r["method"], r["policy"]): r for r in result["rows"]}
    print("\n" + result["report"])

    nofault = rows[("newton_admm", "(no fault)")]
    raised = rows[("newton_admm", "raise")]
    stalled = rows[("newton_admm", "stall")]
    asyn = rows[("async_newton_admm", "quorum (rides through)")]

    # Strict sync under the default policy aborts with the structured error.
    assert "WorkerLostError" in raised["outcome"]
    assert math.isnan(raised["final_objective"])

    # The stall policy completes with identical numerics, paying the downtime
    # as modelled time: its delta is positive and at least the time the
    # worker was away minus the crash-free remainder.
    assert stalled["final_objective"] == nofault["final_objective"]
    assert stalled["modelled_delta_s"] > 0.0
    assert stalled["total_modelled_time_s"] > nofault["total_modelled_time_s"]

    # The quorum schedule rides through: it completes, reaches the no-fault
    # sync target, and its time-to-target is finite and smaller than the
    # stalled sync run's.
    assert math.isfinite(asyn["time_to_target_s"])
    assert asyn["final_objective"] <= nofault["final_objective"]
    assert asyn["time_to_target_s"] < stalled["time_to_target_s"]
