"""Measured serving latency/throughput: micro-batching vs per-request.

The serving claim (ISSUE 8's headline artifact): at a fixed closed-loop
concurrency, accumulating concurrent predict requests for a short window and
scoring them as **one** stacked GEMM yields strictly higher requests/second
than scoring each request with its own forward pass — at bounded tail
latency.  This benchmark measures it: ``CONCURRENCY`` threads each issue
``REQUESTS_PER_THREAD`` sequential 1-row ``predict_proba`` calls against

* the per-request baseline (``batched=False`` — own GEMM in the caller), and
* the micro-batcher at each window in ``WINDOWS_MS`` with
  ``max_batch_requests=CONCURRENCY`` (the standard serving configuration:
  a full batch flushes immediately instead of idling out the window).

Per-request wall-clock gives p50/p99 latency; total wall-clock gives rps.
Results persist to ``BENCH_serving.json`` (committed, like the other
``BENCH_*`` files, so its git history is the serving-perf trajectory) and
``scripts/check_bench.py`` gates the headline ratio
``best batched rps / per-request rps >= 1.0`` plus the zero-loss hot-swap
entry.  Batching wins even on a single core because it amortizes Python/GIL
dispatch overhead across the batch — this is not a multi-core-only effect —
so the headline entry is always gated.
"""

import json
import threading
import time
from concurrent.futures import wait
from pathlib import Path

import numpy as np
import pytest

from repro.backend.numpy_backend import NumpyBackend
from repro.serving.engine import InferenceEngine, score_probabilities
from repro.serving.registry import ModelRegistry

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

N_FEATURES, N_CLASSES = 784, 10  # MNIST-shaped model, the paper's scale
CONCURRENCY = 8
REQUESTS_PER_THREAD = 80
WINDOWS_MS = (0.25, 0.5, 1.0, 2.0, 5.0)

_RESULTS = {}


@pytest.fixture(scope="module")
def bench_record():
    yield _RESULTS
    if _RESULTS:
        payload = {
            "schema": 1,
            "kind": "serving",
            "note": (
                "closed-loop load: CONCURRENCY threads each issuing "
                "sequential 1-row predict_proba calls against an "
                "MNIST-shaped model. 'direct' scores every request with its "
                "own forward pass; each 'windows' entry micro-batches with "
                "max_batch_requests=concurrency. headline.speedup = best "
                "batched rps / direct rps, gated >= 1.0x by "
                "scripts/check_bench.py along with hot_swap.lost == 0. "
                "See docs/serving.md."
            ),
            "serving": _RESULTS,
        }
        _BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    registry = ModelRegistry(tmp_path_factory.mktemp("bench_registry"))
    rng = np.random.default_rng(0)
    weights = rng.standard_normal(N_FEATURES * (N_CLASSES - 1)) * 0.01
    registry.publish("bench", weights, n_classes=N_CLASSES)
    rows = [rng.standard_normal((1, N_FEATURES)) for _ in range(CONCURRENCY)]
    return registry, rows


def _run_load(engine, rows, *, batched):
    """Closed-loop load; returns per-request latencies and total wall."""
    latencies = [[] for _ in range(CONCURRENCY)]
    barrier = threading.Barrier(CONCURRENCY + 1)

    def worker(idx):
        X = rows[idx]
        barrier.wait()
        for _ in range(REQUESTS_PER_THREAD):
            start = time.perf_counter()
            engine.predict_proba("bench", X, batched=batched)
            latencies[idx].append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(CONCURRENCY)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    flat = np.sort(np.concatenate(latencies))
    return {
        "requests": int(flat.size),
        "p50_ms": float(np.percentile(flat, 50) * 1e3),
        "p99_ms": float(np.percentile(flat, 99) * 1e3),
        "rps": float(flat.size / wall),
        "wall_s": float(wall),
    }


def test_window_sweep_vs_per_request(served, bench_record):
    registry, rows = served
    backend = NumpyBackend()

    engine = InferenceEngine(registry, backend=backend)
    try:
        _run_load(engine, rows, batched=False)  # warm caches
        direct = _run_load(engine, rows, batched=False)
    finally:
        engine.close()
    direct["mode"] = "per_request"
    bench_record["direct"] = direct
    print(
        f"per-request: {direct['rps']:.0f} rps, "
        f"p50 {direct['p50_ms']:.3f} ms, p99 {direct['p99_ms']:.3f} ms"
    )

    windows = []
    for window_ms in WINDOWS_MS:
        engine = InferenceEngine(
            registry,
            backend=backend,
            window_s=window_ms / 1e3,
            max_batch_requests=CONCURRENCY,
        )
        try:
            _run_load(engine, rows, batched=True)  # warm
            measured = _run_load(engine, rows, batched=True)
            stats = engine.stats()["models"]["bench"]
        finally:
            engine.close()
        entry = {
            "window_ms": window_ms,
            "mean_batch_requests": stats["mean_batch_requests"],
            **measured,
        }
        windows.append(entry)
        print(
            f"window {window_ms:5.2f} ms: {entry['rps']:.0f} rps, "
            f"p50 {entry['p50_ms']:.3f} ms, p99 {entry['p99_ms']:.3f} ms, "
            f"mean batch {entry['mean_batch_requests']:.1f} requests"
        )
    bench_record["windows"] = windows

    best = max(windows, key=lambda e: e["rps"])
    speedup = best["rps"] / direct["rps"]
    bench_record["headline"] = {
        "concurrency": CONCURRENCY,
        "requests_per_thread": REQUESTS_PER_THREAD,
        "n_features": N_FEATURES,
        "n_classes": N_CLASSES,
        "best_window_ms": best["window_ms"],
        "batched_rps": best["rps"],
        "direct_rps": direct["rps"],
        "speedup": speedup,
        "gated": True,
    }
    print(
        f"headline: batched {best['rps']:.0f} rps (window "
        f"{best['window_ms']} ms) vs per-request {direct['rps']:.0f} rps "
        f"-> {speedup:.2f}x"
    )
    # The acceptance criterion: micro-batching strictly beats per-request
    # at the same closed-loop concurrency.
    assert speedup > 1.0

    # Batching must actually have batched: at full-window or full-batch
    # flushes the mean batch should well exceed one request.
    assert best["mean_batch_requests"] > 1.5


def test_hot_swap_under_load_loses_nothing(served, bench_record):
    """Publish + hot-swap a new version while requests stream: every future
    resolves and every result matches exactly one of the two versions."""
    registry, rows = served
    backend = NumpyBackend()
    v1 = registry.load("bench")
    engine = InferenceEngine(
        registry, backend=backend, window_s=0.001, max_batch_requests=CONCURRENCY
    )
    futures = []
    lock = threading.Lock()
    stop = threading.Event()

    X = rows[0]  # one shared row so results are checkable against both refs

    def submitter():
        batcher = engine._batcher("bench")
        while not stop.is_set():
            f = batcher.submit(X)
            with lock:
                futures.append(f)
            f.result(timeout=30.0)

    threads = [threading.Thread(target=submitter) for _ in range(CONCURRENCY)]
    swaps = 0
    try:
        for t in threads:
            t.start()
        deadline = time.time() + 1.5
        while time.time() < deadline:
            v2 = registry.publish(
                "bench", np.asarray(v1.weights) + 1e-3, n_classes=N_CLASSES
            )
            engine.refresh("bench")
            swaps += 1
            registry.activate("bench", v1.version)
            engine.refresh("bench")
            swaps += 1
            time.sleep(0.02)
        stop.set()
        for t in threads:
            t.join(timeout=30.0)
        with lock:
            issued = list(futures)
        done, not_done = wait(issued, timeout=60.0)
        ref_v1 = score_probabilities(backend, v1, X)
        ref_v2 = score_probabilities(
            backend, registry.load("bench", v2.version), X
        )
        # The two versions differ by far more than GEMM-kernel noise (BLAS
        # may pick a different kernel per batch shape, ~1 ulp), so matching
        # "exactly one version to 1e-9" is an unambiguous classification; a
        # torn model would sit ~1e-3 away from both.
        gap = float(np.max(np.abs(ref_v1 - ref_v2)))
        assert gap > 1e-6
        torn = 0
        for f in done:
            result = f.result()
            near_v1 = np.allclose(result, ref_v1, rtol=0, atol=1e-9)
            near_v2 = np.allclose(result, ref_v2, rtol=0, atol=1e-9)
            if near_v1 == near_v2:  # neither, or ambiguously both
                torn += 1
    finally:
        stop.set()
        engine.close()

    bench_record["hot_swap"] = {
        "issued": len(issued),
        "completed": len(done),
        "lost": len(not_done),
        "torn": torn,
        "swaps": swaps,
        "gated": True,
    }
    print(
        f"hot swap: {swaps} swaps under load, {len(issued)} requests issued, "
        f"{len(not_done)} lost, {torn} torn"
    )
    assert not not_done, "in-flight requests lost during hot swap"
    assert torn == 0
