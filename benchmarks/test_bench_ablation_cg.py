"""Ablation — inner CG budget of the local Newton solves (10/20/30 sweep from
the Figure 4 caption, plus a deliberately starved budget of 5)."""

import numpy as np
from conftest import run_once

from repro.harness.experiments import ablation_cg_budget


def test_ablation_cg_budget(benchmark):
    result = run_once(benchmark, ablation_cg_budget)
    rows = {r["cg_max_iter"]: r for r in result["rows"]}
    print("\n" + result["report"])

    assert set(rows) == {5, 10, 20, 30}
    # More CG iterations cost more modelled time per epoch ...
    assert rows[30]["avg_epoch_time_s"] > rows[5]["avg_epoch_time_s"]
    # ... and do not hurt the final objective.
    assert rows[30]["final_objective"] <= rows[5]["final_objective"] + 0.05
    for row in rows.values():
        assert np.isfinite(row["final_objective"])
