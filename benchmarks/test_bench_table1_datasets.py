"""Table 1 — dataset descriptions (paper vs. reproduction stand-ins)."""

from conftest import run_once

from repro.harness.experiments import table1_datasets


def test_table1_datasets(benchmark):
    result = run_once(benchmark, table1_datasets)
    assert len(result["rows"]) == 4
    print("\n" + result["report"])
