"""Micro-benchmarks of the numerical kernels every solver is built on.

Unlike the figure benchmarks (which run a whole experiment once), these use
pytest-benchmark's normal repeated timing, giving a stable baseline for
performance-regression tracking of the hot paths: softmax value/gradient/HVP,
CG, and one Newton-ADMM epoch.

The speedup benchmarks at the bottom additionally persist their measurements
to ``BENCH_kernels.json`` at the repo root (fused vs. composed forward pass,
cached vs. uncached HVP, block vs. per-RHS CG, mixed vs. fp64 precision).
The file is committed, so its git history is the perf trajectory of the hot
kernels; ``scripts/check_bench.py`` gates CI on the recorded speedups and
``docs/performance.md`` explains how to read it.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.backend.testing import TracingBackend
from repro.datasets.registry import mnist_like
from repro.distributed.cluster import SimulatedCluster
from repro.linalg.cg import block_conjugate_gradient, conjugate_gradient
from repro.linalg.operators import BatchedHessianOperator, HessianOperator
from repro.objectives.base import RegularizedObjective
from repro.objectives.numerics import softmax_probabilities
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


@pytest.fixture(scope="module")
def softmax_problem():
    train, _ = mnist_like(n_train=2000, n_test=100, random_state=0)
    loss = SoftmaxCrossEntropy(train.X, train.y, train.n_classes)
    objective = RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-5))
    rng = np.random.default_rng(0)
    w = rng.standard_normal(objective.dim) * 0.01
    v = rng.standard_normal(objective.dim)
    return objective, w, v


def test_softmax_value(benchmark, softmax_problem):
    objective, w, _ = softmax_problem
    value = benchmark(objective.value, w)
    assert np.isfinite(value)


def test_softmax_gradient(benchmark, softmax_problem):
    objective, w, _ = softmax_problem
    grad = benchmark(objective.gradient, w)
    assert grad.shape == w.shape


def test_softmax_hvp(benchmark, softmax_problem):
    objective, w, v = softmax_problem
    hv = benchmark(objective.hvp, w, v)
    assert hv.shape == w.shape


def test_cg_ten_iterations(benchmark, softmax_problem):
    objective, w, _ = softmax_problem
    grad = objective.gradient(w)
    op = HessianOperator(objective, w)
    result = benchmark(
        conjugate_gradient, op, -grad, tol=1e-4, max_iter=10
    )
    assert result.n_iterations <= 10


def _direct_numpy_gradient(X, indicator, scale, n_classes, n_features):
    """Hand-written softmax gradient with direct ``np.*`` calls — the
    pre-backend code path, used as the dispatch-overhead baseline."""

    def gradient(w):
        W = w.reshape(n_classes - 1, n_features).T
        logits = np.asarray(X @ W)
        P = softmax_probabilities(logits, include_zero=True)
        G = X.T @ (P - indicator)
        return scale * np.asarray(G).T.ravel()

    return gradient


def _best_seconds(fn, arg, *, repeats=15):
    """Best-of-N timing — the standard microbenchmark statistic, far less
    sensitive to scheduler noise on shared CI runners than mean/median."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        times.append(time.perf_counter() - start)
    return float(min(times))


def test_backend_dispatch_no_regression(benchmark, softmax_problem):
    """The NumPy path through the backend abstraction must match direct
    ``np.*`` calls — the backend seam may not tax the hot loop."""
    objective, w, _ = softmax_problem
    loss = objective.loss
    direct = _direct_numpy_gradient(
        loss.X, loss._indicator, loss.scale, loss.n_classes, loss.n_features
    )
    np.testing.assert_allclose(direct(w), loss.gradient(w), atol=1e-12)

    # Warm up both paths, then compare best-of-N.  Best-of timing of two
    # back-to-back measurements cancels runner load, and the 2x bound only
    # trips on a structural regression (e.g. a per-call host copy sneaking
    # into the seam), not on scheduler jitter.  A single over-threshold
    # reading is re-measured once so one noisy-neighbor episode on a shared
    # CI runner cannot fail the build; a real regression reproduces.
    _best_seconds(direct, w, repeats=3)
    _best_seconds(loss.gradient, w, repeats=3)
    ratio = float("inf")
    for _ in range(2):
        t_direct = _best_seconds(direct, w)
        t_threaded = _best_seconds(loss.gradient, w)
        ratio = t_threaded / t_direct
        if ratio < 2.0:
            break
    print(f"backend dispatch overhead: {ratio:.3f}x (threaded/direct)")
    assert ratio < 2.0, (
        f"backend-threaded gradient is {ratio:.2f}x the direct np.* gradient "
        "(reproduced across two measurement rounds)"
    )

    grad = benchmark(loss.gradient, w)
    assert grad.shape == w.shape


# ---------------------------------------------------------------------------
# Kernel-speedup benchmarks: measured ratios persisted to BENCH_kernels.json.
# ---------------------------------------------------------------------------

_KERNEL_RESULTS = {}


@pytest.fixture(scope="module")
def bench_record():
    """Accumulates kernel measurements; writes BENCH_kernels.json at teardown.

    Only the speedup benchmarks feed this, so a partial run (``-k``) rewrites
    just the entries it measured on top of the previously committed file.
    """
    if _BENCH_PATH.exists():
        try:
            _KERNEL_RESULTS.update(json.loads(_BENCH_PATH.read_text())["kernels"])
        except (ValueError, KeyError):
            pass
    yield _KERNEL_RESULTS
    if _KERNEL_RESULTS:
        payload = {
            "schema": 1,
            "backend": "numpy",
            "note": (
                "best-of-N wall-clock seconds for the solver hot kernels; "
                "speedup > 1.0 means the optimized path wins. See "
                "docs/performance.md for how each pair is measured and "
                "scripts/check_bench.py for the CI gate."
            ),
            "kernels": _KERNEL_RESULTS,
        }
        _BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _timed_pair(baseline, optimized, arg, *, repeats=15):
    """Warm both paths, then best-of-N each; returns (t_base, t_opt)."""
    _best_seconds(baseline, arg, repeats=3)
    _best_seconds(optimized, arg, repeats=3)
    return (
        _best_seconds(baseline, arg, repeats=repeats),
        _best_seconds(optimized, arg, repeats=repeats),
    )


def test_fused_value_and_gradient_speedup(softmax_problem, bench_record):
    """Fused value+gradient (shared forward pass) vs. the pre-cache composed
    path that recomputes logits for the value and again for the gradient."""
    objective, w, _ = softmax_problem
    loss = objective.loss

    def composed(w):
        loss._iterate_cache = None
        v = objective.value(w)
        loss._iterate_cache = None
        return v, objective.gradient(w)

    def fused(w):
        loss._iterate_cache = None
        return objective.value_and_gradient(w)

    v_c, g_c = composed(w)
    v_f, g_f = fused(w)
    assert v_f == v_c
    np.testing.assert_array_equal(g_f, g_c)

    t_composed, t_fused = _timed_pair(composed, fused, w)
    speedup = t_composed / t_fused
    print(f"fused value+gradient speedup: {speedup:.3f}x")
    bench_record["fused_value_and_gradient"] = {
        "baseline": "value() + gradient() with the iterate cache busted",
        "optimized": "value_and_gradient() sharing one forward pass",
        "baseline_seconds": t_composed,
        "optimized_seconds": t_fused,
        "speedup": speedup,
    }
    assert speedup > 0.0


def test_cached_hvp_speedup(softmax_problem, bench_record):
    """An HVP at an iterate whose probabilities are cached (2 GEMMs) vs. a
    cold HVP that must redo the forward pass (3 GEMMs + softmax)."""
    objective, w, v = softmax_problem
    loss = objective.loss

    def cold(v):
        loss._iterate_cache = None
        return objective.hvp(w, v)

    def warm(v):
        return objective.hvp(w, v)

    np.testing.assert_array_equal(cold(v), warm(v))
    t_cold, t_warm = _timed_pair(cold, warm, v)
    speedup = t_cold / t_warm
    print(f"cached-iterate HVP speedup: {speedup:.3f}x")
    bench_record["cached_hvp"] = {
        "baseline": "hvp() with a cold per-iterate cache (recomputes softmax)",
        "optimized": "hvp() at a cached iterate (CG steady state)",
        "baseline_seconds": t_cold,
        "optimized_seconds": t_warm,
        "speedup": speedup,
    }
    assert speedup > 0.0


def test_block_cg_speedup(softmax_problem, bench_record):
    """Block CG on 10 simultaneous right-hand sides (one GEMM per iteration)
    vs. ten independent scalar-CG solves — the per-class-HVP baseline every
    Newton-type solver used before ``cg(..., block=True)``."""
    objective, w, _ = softmax_problem
    rng = np.random.default_rng(1)
    n_rhs = 10
    iters = 10
    B = rng.standard_normal((objective.dim, n_rhs))

    def per_rhs(B):
        op = HessianOperator(objective, w)
        return np.column_stack(
            [
                conjugate_gradient(op, B[:, j], tol=0.0, max_iter=iters).x
                for j in range(B.shape[1])
            ]
        )

    def blocked(B):
        op = BatchedHessianOperator(objective, w)
        return block_conjugate_gradient(op, B, tol=0.0, max_iter=iters).X

    # Same Krylov recurrence per column; only GEMM reassociation differs.
    np.testing.assert_allclose(per_rhs(B), blocked(B), rtol=1e-8, atol=1e-10)

    t_loop, t_block = _timed_pair(per_rhs, blocked, B, repeats=7)
    speedup = t_loop / t_block
    print(f"block-CG speedup over per-RHS CG ({n_rhs} RHS): {speedup:.3f}x")
    bench_record["block_cg"] = {
        "baseline": f"{n_rhs} independent scalar CG solves ({iters} iters each)",
        "optimized": f"one block CG solve, {n_rhs} RHS batched per GEMM",
        "baseline_seconds": t_loop,
        "optimized_seconds": t_block,
        "speedup": speedup,
    }
    assert speedup > 1.0, f"block CG slower than looped CG ({speedup:.2f}x)"


def test_batched_hvp_speedup(softmax_problem, bench_record):
    """``hvp_mat`` (class-batched GEMMs) vs. the per-class GEMV loop."""
    objective, w, _ = softmax_problem
    loss = objective.loss
    rng = np.random.default_rng(2)
    v = rng.standard_normal(objective.dim)

    def per_class(v):
        return loss.hvp_per_class(w, v)

    def batched(v):
        return loss.hvp(w, v)

    np.testing.assert_allclose(per_class(v), batched(v), rtol=1e-10, atol=1e-12)
    t_loop, t_batched = _timed_pair(per_class, batched, v)
    speedup = t_loop / t_batched
    print(f"batched HVP speedup over per-class GEMVs: {speedup:.3f}x")
    bench_record["batched_hvp"] = {
        "baseline": "per-class GEMV loop over the C-1 logit columns",
        "optimized": "single (n x p) @ (p x C-1) GEMM pair",
        "baseline_seconds": t_loop,
        "optimized_seconds": t_batched,
        "speedup": speedup,
    }
    assert speedup > 0.0


def test_mixed_precision_speedup(bench_record):
    """Mixed-precision gradient (fp32 GEMMs, fp64 reductions) vs. full fp64."""
    train, _ = mnist_like(n_train=2000, n_test=100, random_state=0)
    obj64 = SoftmaxCrossEntropy(train.X, train.y, train.n_classes)
    objmx = SoftmaxCrossEntropy(
        train.X, train.y, train.n_classes, precision="mixed"
    )
    rng = np.random.default_rng(0)
    w64 = rng.standard_normal(obj64.dim) * 0.01
    wmx = w64.astype(np.float32)

    def fp64(_):
        obj64._iterate_cache = None
        return obj64.value_and_gradient(w64)

    def mixed(_):
        objmx._iterate_cache = None
        return objmx.value_and_gradient(wmx)

    v64, _ = fp64(None)
    vmx, gmx = mixed(None)
    assert gmx.dtype == np.float32
    assert abs(vmx - v64) <= 5e-5 * max(abs(v64), 1.0)

    t64, tmx = _timed_pair(fp64, mixed, None)
    speedup = t64 / tmx
    print(f"mixed-precision value+gradient speedup: {speedup:.3f}x")
    bench_record["mixed_precision_value_and_gradient"] = {
        "baseline": "fp64 storage and compute",
        "optimized": "fp32 storage/GEMMs, fp64 log-sum-exp (precision='mixed')",
        "baseline_seconds": t64,
        "optimized_seconds": tmx,
        "speedup": speedup,
    }
    assert speedup > 0.0


def test_fused_path_op_budget(bench_record):
    """The fused value+gradient+HVP path must issue strictly fewer backend
    operations than the composed calls — counted, not timed, so this holds on
    any runner."""
    rng = np.random.default_rng(0)
    n, p, k = 120, 16, 6
    X = rng.standard_normal((n, p))
    y = rng.integers(0, k, size=n)
    n_hvps = 3
    vs = [rng.standard_normal(p * (k - 1)) for _ in range(n_hvps)]

    def run_composed(backend, obj):
        w = obj.check_weights(backend.asarray(rng.standard_normal(obj.dim) * 0.1))
        backend.reset()
        obj._iterate_cache = None
        obj.value(w)
        obj._iterate_cache = None
        obj.gradient(w)
        for v in vs:
            obj._iterate_cache = None
            obj.hvp(w, v)
        return backend.total_calls()

    def run_fused(backend, obj):
        w = obj.check_weights(backend.asarray(rng.standard_normal(obj.dim) * 0.1))
        backend.reset()
        _, _, hvp_op = obj.value_and_gradient_and_hvp_operator(w)
        for v in vs:
            hvp_op.matvec(v)
        return backend.total_calls()

    bk_c = TracingBackend()
    composed_ops = run_composed(bk_c, SoftmaxCrossEntropy(X, y, k, backend=bk_c))
    bk_f = TracingBackend()
    fused_ops = run_fused(bk_f, SoftmaxCrossEntropy(X, y, k, backend=bk_f))
    print(f"op budget: fused={fused_ops}, composed={composed_ops}")
    bench_record["fused_path_op_budget"] = {
        "baseline": f"composed value/gradient/{n_hvps}x hvp, cache busted",
        "optimized": f"value_and_gradient_and_hvp_operator + {n_hvps} matvecs",
        "baseline_ops": int(composed_ops),
        "optimized_ops": int(fused_ops),
        "speedup": composed_ops / fused_ops,
    }
    assert fused_ops < composed_ops


def test_newton_admm_single_epoch(benchmark):
    train, _ = mnist_like(n_train=1000, n_test=100, random_state=0)

    def one_epoch():
        cluster = SimulatedCluster(train, 4, random_state=0)
        return NewtonADMM(lam=1e-5, max_epochs=1, record_accuracy=False).fit(cluster)

    trace = benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    assert trace.n_epochs == 1
