"""Micro-benchmarks of the numerical kernels every solver is built on.

Unlike the figure benchmarks (which run a whole experiment once), these use
pytest-benchmark's normal repeated timing, giving a stable baseline for
performance-regression tracking of the hot paths: softmax value/gradient/HVP,
CG, and one Newton-ADMM epoch.
"""

import time

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.datasets.registry import mnist_like
from repro.distributed.cluster import SimulatedCluster
from repro.linalg.cg import conjugate_gradient
from repro.linalg.operators import HessianOperator
from repro.objectives.base import RegularizedObjective
from repro.objectives.numerics import softmax_probabilities
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy


@pytest.fixture(scope="module")
def softmax_problem():
    train, _ = mnist_like(n_train=2000, n_test=100, random_state=0)
    loss = SoftmaxCrossEntropy(train.X, train.y, train.n_classes)
    objective = RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-5))
    rng = np.random.default_rng(0)
    w = rng.standard_normal(objective.dim) * 0.01
    v = rng.standard_normal(objective.dim)
    return objective, w, v


def test_softmax_value(benchmark, softmax_problem):
    objective, w, _ = softmax_problem
    value = benchmark(objective.value, w)
    assert np.isfinite(value)


def test_softmax_gradient(benchmark, softmax_problem):
    objective, w, _ = softmax_problem
    grad = benchmark(objective.gradient, w)
    assert grad.shape == w.shape


def test_softmax_hvp(benchmark, softmax_problem):
    objective, w, v = softmax_problem
    hv = benchmark(objective.hvp, w, v)
    assert hv.shape == w.shape


def test_cg_ten_iterations(benchmark, softmax_problem):
    objective, w, _ = softmax_problem
    grad = objective.gradient(w)
    op = HessianOperator(objective, w)
    result = benchmark(
        conjugate_gradient, op, -grad, tol=1e-4, max_iter=10
    )
    assert result.n_iterations <= 10


def _direct_numpy_gradient(X, indicator, scale, n_classes, n_features):
    """Hand-written softmax gradient with direct ``np.*`` calls — the
    pre-backend code path, used as the dispatch-overhead baseline."""

    def gradient(w):
        W = w.reshape(n_classes - 1, n_features).T
        logits = np.asarray(X @ W)
        P = softmax_probabilities(logits, include_zero=True)
        G = X.T @ (P - indicator)
        return scale * np.asarray(G).T.ravel()

    return gradient


def _best_seconds(fn, arg, *, repeats=15):
    """Best-of-N timing — the standard microbenchmark statistic, far less
    sensitive to scheduler noise on shared CI runners than mean/median."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        times.append(time.perf_counter() - start)
    return float(min(times))


def test_backend_dispatch_no_regression(benchmark, softmax_problem):
    """The NumPy path through the backend abstraction must match direct
    ``np.*`` calls — the backend seam may not tax the hot loop."""
    objective, w, _ = softmax_problem
    loss = objective.loss
    direct = _direct_numpy_gradient(
        loss.X, loss._indicator, loss.scale, loss.n_classes, loss.n_features
    )
    np.testing.assert_allclose(direct(w), loss.gradient(w), atol=1e-12)

    # Warm up both paths, then compare best-of-N.  Best-of timing of two
    # back-to-back measurements cancels runner load, and the 2x bound only
    # trips on a structural regression (e.g. a per-call host copy sneaking
    # into the seam), not on scheduler jitter.  A single over-threshold
    # reading is re-measured once so one noisy-neighbor episode on a shared
    # CI runner cannot fail the build; a real regression reproduces.
    _best_seconds(direct, w, repeats=3)
    _best_seconds(loss.gradient, w, repeats=3)
    ratio = float("inf")
    for _ in range(2):
        t_direct = _best_seconds(direct, w)
        t_threaded = _best_seconds(loss.gradient, w)
        ratio = t_threaded / t_direct
        if ratio < 2.0:
            break
    print(f"backend dispatch overhead: {ratio:.3f}x (threaded/direct)")
    assert ratio < 2.0, (
        f"backend-threaded gradient is {ratio:.2f}x the direct np.* gradient "
        "(reproduced across two measurement rounds)"
    )

    grad = benchmark(loss.gradient, w)
    assert grad.shape == w.shape


def test_newton_admm_single_epoch(benchmark):
    train, _ = mnist_like(n_train=1000, n_test=100, random_state=0)

    def one_epoch():
        cluster = SimulatedCluster(train, 4, random_state=0)
        return NewtonADMM(lam=1e-5, max_epochs=1, record_accuracy=False).fit(cluster)

    trace = benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    assert trace.n_epochs == 1
