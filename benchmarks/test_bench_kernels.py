"""Micro-benchmarks of the numerical kernels every solver is built on.

Unlike the figure benchmarks (which run a whole experiment once), these use
pytest-benchmark's normal repeated timing, giving a stable baseline for
performance-regression tracking of the hot paths: softmax value/gradient/HVP,
CG, and one Newton-ADMM epoch.
"""

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.datasets.registry import mnist_like
from repro.distributed.cluster import SimulatedCluster
from repro.linalg.cg import conjugate_gradient
from repro.linalg.operators import HessianOperator
from repro.objectives.base import RegularizedObjective
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy


@pytest.fixture(scope="module")
def softmax_problem():
    train, _ = mnist_like(n_train=2000, n_test=100, random_state=0)
    loss = SoftmaxCrossEntropy(train.X, train.y, train.n_classes)
    objective = RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-5))
    rng = np.random.default_rng(0)
    w = rng.standard_normal(objective.dim) * 0.01
    v = rng.standard_normal(objective.dim)
    return objective, w, v


def test_softmax_value(benchmark, softmax_problem):
    objective, w, _ = softmax_problem
    value = benchmark(objective.value, w)
    assert np.isfinite(value)


def test_softmax_gradient(benchmark, softmax_problem):
    objective, w, _ = softmax_problem
    grad = benchmark(objective.gradient, w)
    assert grad.shape == w.shape


def test_softmax_hvp(benchmark, softmax_problem):
    objective, w, v = softmax_problem
    hv = benchmark(objective.hvp, w, v)
    assert hv.shape == w.shape


def test_cg_ten_iterations(benchmark, softmax_problem):
    objective, w, _ = softmax_problem
    grad = objective.gradient(w)
    op = HessianOperator(objective, w)
    result = benchmark(
        conjugate_gradient, op, -grad, tol=1e-4, max_iter=10
    )
    assert result.n_iterations <= 10


def test_newton_admm_single_epoch(benchmark):
    train, _ = mnist_like(n_train=1000, n_test=100, random_state=0)

    def one_epoch():
        cluster = SimulatedCluster(train, 4, random_state=0)
        return NewtonADMM(lam=1e-5, max_epochs=1, record_accuracy=False).fit(cluster)

    trace = benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    assert trace.n_epochs == 1
