"""Scheduler-overhead micro-benchmark: event engine vs the direct lock-step
loop on a small synchronous run.

The event engine adds per-worker timeline bookkeeping (segments, barriers) to
every round; this benchmark bounds that cost on a workload where it matters
most — many cheap rounds — and asserts the two paths stay numerically
identical while doing so.
"""

import time

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.datasets.registry import mnist_like
from repro.distributed.cluster import SimulatedCluster


@pytest.fixture(scope="module")
def workload():
    train, _ = mnist_like(n_train=1200, n_test=100, random_state=0)
    return train


def _run(train, mode):
    cluster = SimulatedCluster(train, 4, engine=mode, random_state=0)
    solver = NewtonADMM(lam=1e-5, max_epochs=8, record_accuracy=False)
    return solver.fit(cluster)


def test_lockstep_epochs(benchmark, workload):
    trace = benchmark(_run, workload, "lockstep")
    assert np.isfinite(trace.final.objective)


def test_event_engine_epochs(benchmark, workload):
    trace = benchmark(_run, workload, "event")
    assert np.isfinite(trace.final.objective)


def test_event_engine_overhead_bounded(workload):
    # Warm up (datasets cached by the fixture; objectives built per run).
    _run(workload, "lockstep")
    _run(workload, "event")

    def timed(mode, repeats=3):
        best = float("inf")
        trace = None
        for _ in range(repeats):
            start = time.perf_counter()
            trace = _run(workload, mode)
            best = min(best, time.perf_counter() - start)
        return best, trace

    t_lockstep, trace_lockstep = timed("lockstep")
    t_event, trace_event = timed("event")
    ratio = t_event / t_lockstep
    print(
        f"\nscheduler overhead: lockstep {t_lockstep * 1e3:.1f} ms, "
        f"event {t_event * 1e3:.1f} ms, ratio {ratio:.3f}x"
    )
    # Identical numbers on both paths ...
    np.testing.assert_array_equal(trace_lockstep.final_w, trace_event.final_w)
    assert trace_lockstep.final.modelled_time == trace_event.final.modelled_time
    # ... and the timeline bookkeeping stays a small fraction of a real run
    # (generous bound: CI machines are noisy).
    assert ratio < 1.5
