"""Static plan verification vs. trial execution in the overlap proposer.

``propose_overlap`` historically vetted every candidate rewrite by executing
the trial plan on a scratch cluster.  PR 10 replaces that with the effect
model's static dataflow walk (``verify="static"``); this benchmark measures
the proposer-side speedup per registered sync solver and persists the
ratios to ``BENCH_analysis.json`` (gated >= 1.0x in CI by
``scripts/check_bench.py``).

Two invariants are asserted while timing, not just speed:

- static and trial-execution verification reach identical accept/reject
  decisions and identical rewritten plans on every solver (the acceptance
  criterion of the PR);
- entries are only *gated* for solvers whose plans actually produce overlap
  candidates — with nothing to verify, both paths are near-instant and the
  ratio is pure timer noise.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis import verify_plan
from repro.datasets.synthetic import make_binary_margin, make_multiclass_gaussian
from repro.distributed.autotune import propose_overlap
from repro.distributed.cluster import SimulatedCluster
from repro.harness.runner import SOLVER_REGISTRY

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"

SYNC_SOLVERS = (
    "newton_admm",
    "giant",
    "inexact_dane",
    "aide",
    "disco",
    "cocoa",
    "sync_sgd",
)

_RESULTS = {}


@pytest.fixture(scope="module")
def bench_record():
    """Accumulates measurements; writes BENCH_analysis.json at teardown."""
    if _BENCH_PATH.exists():
        try:
            _RESULTS.update(json.loads(_BENCH_PATH.read_text())["analysis"])
        except (ValueError, KeyError):
            pass
    yield _RESULTS
    if _RESULTS:
        payload = {
            "schema": 1,
            "note": (
                "best-of-N wall-clock seconds of propose_overlap with static "
                "effect-model verification vs trial execution; speedup > 1.0 "
                "means the static verifier wins. Entries are gated only for "
                "solvers whose plans produce overlap candidates. See "
                "docs/analysis.md and scripts/check_bench.py."
            ),
            "analysis": _RESULTS,
        }
        _BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _best_seconds(fn, *, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fitted(name):
    data = (
        make_binary_margin(150, 8, margin=1.5, random_state=1)
        if name == "cocoa"
        else make_multiclass_gaussian(160, 6, 3, class_separation=2.0, random_state=0)
    )
    cluster = SimulatedCluster(data, 4, engine="event", random_state=0)
    solver = SOLVER_REGISTRY[name](max_epochs=1)
    solver.fit(cluster)
    return solver._plan_epoch(cluster, 0), cluster


def test_static_verification_beats_trial_execution(bench_record):
    for name in SYNC_SOLVERS:
        plan, cluster = _fitted(name)
        static = propose_overlap(plan, verify="static")
        executed = propose_overlap(plan, verify_on=cluster, verify="execute")

        # identical decisions and identical rewrites — or the speedup is moot
        assert [(c["name"], c["status"]) for c in static.candidates] == [
            (c["name"], c["status"]) for c in executed.candidates
        ]
        assert static.proposed.signature() == executed.proposed.signature()
        assert verify_plan(static.proposed).ok

        n_candidates = len(static.candidates)
        # warm both paths, then best-of-N each
        _best_seconds(lambda: propose_overlap(plan, verify="static"), repeats=2)
        _best_seconds(
            lambda: propose_overlap(plan, verify_on=cluster, verify="execute"),
            repeats=2,
        )
        t_static = _best_seconds(
            lambda: propose_overlap(plan, verify="static"), repeats=7
        )
        t_execute = _best_seconds(
            lambda: propose_overlap(plan, verify_on=cluster, verify="execute"),
            repeats=7,
        )
        speedup = t_execute / t_static if t_static > 0 else float("inf")
        gated = n_candidates > 0
        entry = {
            "static_s": t_static,
            "execute_s": t_execute,
            "speedup": round(speedup, 3),
            "candidates": n_candidates,
            "identical_proposals": True,
            "gated": gated,
        }
        if not gated:
            entry["ungated_reason"] = (
                "no overlap candidates in this plan; both paths are no-ops"
            )
        bench_record[name] = entry
        print(
            f"\n{name:14s} static={t_static * 1e3:.3f}ms "
            f"execute={t_execute * 1e3:.3f}ms speedup={speedup:.1f}x "
            f"candidates={n_candidates}"
        )
        if gated:
            assert speedup >= 1.0, (
                f"{name}: static verification ({t_static:.6f}s) slower than "
                f"trial execution ({t_execute:.6f}s)"
            )
