"""Ablation — interconnect sensitivity.

Reproduces the paper's systems argument: the gap between Newton-ADMM (one
communication round per iteration) and GIANT (three rounds) is modest on the
paper's 100 Gb/s InfiniBand but grows as the interconnect slows down.
"""

from conftest import run_once

from repro.harness.experiments import ablation_interconnect_sensitivity


def test_ablation_interconnect_sensitivity(benchmark):
    result = run_once(benchmark, ablation_interconnect_sensitivity)
    rows = {r["network"]: r for r in result["rows"]}
    print("\n" + result["report"])

    assert set(rows) == {"infiniband_100g", "ethernet_10g", "wan_slow"}
    for row in rows.values():
        # GIANT's three rounds always cost at least as much communication.
        assert row["giant_comm_s"] >= row["admm_comm_s"]
    # The epoch-time advantage of Newton-ADMM grows monotonically as the
    # interconnect degrades (InfiniBand -> 10 GbE -> WAN).
    ratios = [
        rows["infiniband_100g"]["giant_over_admm"],
        rows["ethernet_10g"]["giant_over_admm"],
        rows["wan_slow"]["giant_over_admm"],
    ]
    assert ratios[1] >= ratios[0] * 0.99
    assert ratios[2] >= ratios[1] * 0.99
    assert ratios[2] > 1.5  # on a WAN the single round dominates
