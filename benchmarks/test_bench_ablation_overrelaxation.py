"""Ablation — ADMM over-relaxation factor (design choice: the paper uses alpha = 1)."""

import numpy as np
from conftest import run_once

from repro.harness.experiments import ablation_over_relaxation


def test_ablation_over_relaxation(benchmark):
    result = run_once(benchmark, ablation_over_relaxation)
    rows = result["rows"]
    print("\n" + result["report"])

    assert [r["over_relaxation"] for r in rows] == [1.0, 1.5, 1.8]
    by_alpha = {r["over_relaxation"]: r for r in rows}
    # Every setting still drives the objective far below its starting value
    # (log C ~= 2.3 for the 10-class MNIST-like workload at w = 0) ...
    for row in rows:
        assert np.isfinite(row["final_objective"])
        assert row["best_objective"] < 0.5
    # ... and moderate over-relaxation (the Boyd-recommended 1.5) tracks the
    # plain alpha = 1 run closely; only the aggressive 1.8 setting visibly
    # interacts with the spectral penalty adaptation.
    assert by_alpha[1.5]["best_objective"] <= by_alpha[1.0]["best_objective"] * 2 + 1e-6
