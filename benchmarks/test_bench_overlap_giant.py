"""Ablation — GIANT gradient-allreduce overlap (ROADMAP item).

GIANT's round-1 gradient all-reduce is declared overlappable with the line
search's step-independent ``f_i(w)`` evaluation — the only local work in the
iteration that does not consume the reduced gradient, so the schedule is
realizable (``GIANT(overlap_gradient=True)``).  On a network-bound
configuration (slow WAN, event engine) the background transfer hides that
evaluation entirely, so the overlap variant's modelled epoch time must be
*strictly* lower while its iterates stay bit-identical.
"""

from conftest import run_once

from repro.harness.experiments import ablation_overlap_giant


def test_ablation_overlap_giant(benchmark):
    result = run_once(benchmark, ablation_overlap_giant)
    rows = {r["variant"]: r for r in result["rows"]}
    print("\n" + result["report"])

    base = rows["giant"]
    overlap = rows["giant_overlap"]
    # The modelled epoch time of the overlap variant is strictly lower under
    # the network-bound config...
    assert overlap["avg_epoch_time_s"] < base["avg_epoch_time_s"]
    # ...while the optimization path is untouched: identical objectives and
    # the same three declared communication rounds per iteration.
    assert overlap["final_objective"] == base["final_objective"]
    assert overlap["comm_rounds"] == base["comm_rounds"]
    traces = result["traces"]
    declared = traces["giant_overlap"].info["schedule"]["declared"]
    assert declared["rounds"] == 3
    assert declared["overlapped"] == 1
    # The saving equals the compute the transfer hid — strictly positive.
    saving = rows["modelled saving"]["avg_epoch_time_s"]
    assert saving > 0
