"""Figure 3 — speed-up ratio of Newton-ADMM over GIANT at relative objective
theta < 0.05 (x* from a high-precision single-node Newton solve)."""

import math

import numpy as np
from conftest import run_once

from repro.harness.experiments import figure3_speedup_ratios


def test_figure3_speedup_ratios(benchmark):
    result = run_once(benchmark, figure3_speedup_ratios)
    rows = result["rows"]
    print("\n" + result["report"])

    # strong: 4 datasets x 4 counts; weak: 3 datasets x 4 counts
    assert len(rows) == 28

    # Newton-ADMM reaches the target on the bulk of the configurations.
    reached = [r for r in rows if math.isfinite(r["admm_time_s"])]
    assert len(reached) >= len(rows) // 2

    # Where both methods reach the target, the median speed-up favours
    # Newton-ADMM (the paper reports 1.3x-18x).
    ratios = [
        r["speedup_ratio"]
        for r in rows
        if math.isfinite(r["speedup_ratio"]) and r["speedup_ratio"] > 0
    ]
    assert ratios, "no configuration produced a finite speed-up ratio"
    assert np.median(ratios) >= 0.8
