"""Figure 1 — training objective vs. time for the second-order methods
(Newton-ADMM, GIANT, InexactDANE, AIDE) on the MNIST-like workload."""

import math

from conftest import run_once

from repro.harness.experiments import figure1_second_order_comparison
from repro.metrics.traces import average_epoch_time


def test_figure1_second_order_comparison(benchmark):
    result = run_once(benchmark, figure1_second_order_comparison)
    traces = result["traces"]
    print("\n" + result["report"])

    # Shape checks mirroring the paper's claims:
    # 1. Newton-ADMM's average epoch time is below GIANT's and far below
    #    InexactDANE's / AIDE's (which do heavy local SVRG work).
    admm_epoch = average_epoch_time(traces["newton_admm"])
    giant_epoch = average_epoch_time(traces["giant"])
    dane_epoch = average_epoch_time(traces["inexact_dane"])
    assert admm_epoch < giant_epoch
    assert dane_epoch > 2.0 * admm_epoch

    # 2. Newton-ADMM reaches the common objective target in finite time.
    rows = {r["method"]: r for r in result["rows"]}
    assert math.isfinite(rows["newton_admm"]["time_to_target_s"])
