"""Ablation — schedule autotuning: under a declared straggler+fault profile
the tournament-tuned plan beats every hand-written solver plan on the event
engine's modelled clock, bit-reproducibly."""

import math

from conftest import run_once

from repro.harness.experiments import ablation_autotune


def test_ablation_autotune(benchmark):
    result = run_once(benchmark, ablation_autotune)
    print("\n" + result["report"])

    rows = {r["candidate"]: r for r in result["rows"]}
    tournament = result["result"]
    winner = rows[tournament.winner]

    # The headline: the tuned (searched, not hand-written) schedule reaches
    # the synchronous baseline's final objective in strictly less modelled
    # time than EVERY hand-written plan in the field.
    assert not winner["hand_written"]
    assert math.isfinite(winner["score_time_to_target_s"])
    hand_written = [r for r in result["rows"] if r["hand_written"]]
    assert hand_written, "tournament ran without hand-written incumbents"
    for row in hand_written:
        assert winner["score_time_to_target_s"] < row["score_time_to_target_s"], (
            f"hand-written {row['candidate']} "
            f"(t={row['score_time_to_target_s']:.3g}s) is not strictly beaten "
            f"by {tournament.winner} "
            f"(t={winner['score_time_to_target_s']:.3g}s)"
        )

    # The tuner is bit-reproducible under the fixed seed: the driver reran
    # the full tournament and compared every candidate's score exactly.
    assert result["reproducible"] is True

    # Provenance of the win is on the winning trace.
    provenance = tournament.winner_trace.info["autotune"]
    assert provenance["winner"] == tournament.winner
    assert provenance["beat_every_hand_written"] is True
    assert provenance["profile"]["straggler"] is not None
    assert provenance["profile"]["faults"] is not None

    # The fault schedule was calibrated, not hard-coded: MTBF is a fraction
    # of the measured fault-free baseline, so crashes actually fire at this
    # scale's modelled runtime.
    assert 0.0 < float(provenance["profile"]["faults"]["mtbf"]) < result["base_time"]
