"""Ablation — asynchronous execution (quorum Newton-ADMM, async SGD) versus
synchronous Newton-ADMM under a persistent straggler."""

import math

from conftest import run_once

from repro.harness.experiments import ablation_async_admm


def test_ablation_async_admm(benchmark):
    result = run_once(benchmark, ablation_async_admm)
    rows = {r["method"]: r for r in result["rows"]}
    print("\n" + result["report"])

    sync = rows["newton_admm"]
    asyn = rows["async_newton_admm"]
    # The async schedule is not gated on the straggler, so it reaches the
    # synchronous run's final objective in less modelled time.
    assert math.isfinite(asyn["time_to_sync_objective_s"])
    assert asyn["time_to_sync_objective_s"] < sync["total_modelled_time_s"]
    # One communication round per z-update, as for the synchronous solver.
    assert asyn["comm_rounds"] == asyn["epochs"]
    # Staleness is measured from the schedule, not assumed.
    assert asyn["mean_staleness"] >= 0.0
