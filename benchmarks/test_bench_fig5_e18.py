"""Figure 5 — weak scaling on the E18-like high-dimensional sparse workload
with 16 workers, lambda in {1e-3, 1e-5} (Newton-ADMM vs GIANT)."""

import numpy as np
from conftest import run_once

from repro.harness.experiments import figure5_e18_weak_scaling


def test_figure5_e18_weak_scaling(benchmark):
    result = run_once(benchmark, figure5_e18_weak_scaling)
    rows = result["rows"]
    print("\n" + result["report"])

    assert len(rows) == 4  # 2 lambdas x 2 methods
    by_key = {(r["lambda"], r["method"]): r for r in rows}

    for lam in (1e-3, 1e-5):
        admm = by_key[(lam, "newton_admm")]
        giant = by_key[(lam, "giant")]
        # The Hessian-free path keeps per-epoch cost low for both methods and
        # Newton-ADMM's is no worse than GIANT's (paper: 1.87 s vs 2.44 s).
        assert admm["avg_epoch_time_s"] <= giant["avg_epoch_time_s"] * 1.1
        assert np.isfinite(admm["final_objective"])
        assert admm["final_objective"] < np.log(20)
