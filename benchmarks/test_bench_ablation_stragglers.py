"""Ablation — straggler sensitivity of the synchronous distributed methods."""

from conftest import run_once

from repro.harness.experiments import ablation_straggler_sensitivity


def test_ablation_straggler_sensitivity(benchmark):
    result = run_once(benchmark, ablation_straggler_sensitivity)
    rows = result["rows"]
    print("\n" + result["report"])

    by_key = {(r["slowdown"], r["method"]): r for r in rows}
    for method in ("newton_admm", "giant"):
        base = by_key[(1.0, method)]["avg_epoch_time_s"]
        slow4 = by_key[(4.0, method)]["avg_epoch_time_s"]
        slow16 = by_key[(16.0, method)]["avg_epoch_time_s"]
        # Synchronous methods pay for the straggler: epoch time grows
        # monotonically with the slowdown factor.
        assert base < slow4 < slow16
        # And the growth is driven by compute (the straggling part), not
        # communication.
        assert by_key[(16.0, method)]["compute_s"] > by_key[(1.0, method)]["compute_s"]
