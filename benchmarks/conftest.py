"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper at QUICK
reproduction scale and prints the corresponding report, so running

    pytest benchmarks/ --benchmark-only

reproduces the full evaluation section in one go.  Reports are printed with
``-s``-independent ``print`` calls at the end of each benchmark; pytest shows
them for failed tests and ``--capture=no`` shows them always.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
