"""Measured wall-clock speedup of the real-process engine.

The simulated engines *model* parallel time; this benchmark *measures* it:
NewtonADMM and GIANT run the same data-parallel fit on 1/2/4/8 real worker
processes (``engine="process"``) and the measured fit wall-clock at each
width is persisted to ``BENCH_process_engine.json``.  The file is committed,
so its git history is the measured-scaling trajectory of the repo, the
counterpart of ``BENCH_kernels.json`` for single-kernel speed.

Pool startup (spawn + imports + shared-memory handoff) is excluded from the
timing — the paper's timings likewise exclude cluster bring-up — by starting
the worker pool before the clock.  Speedup is ``t(1 worker) / t(n workers)``
on the fixed global problem.

Honesty over theatre: real speedup needs real cores.  Each entry records the
host's usable CPU count and is only ``gated`` (enforced >= 1.0x by
``scripts/check_bench.py``) when the host has at least as many cores as
workers; on a single-core runner the measured ratios are recorded but marked
ungated, with the reason in the entry.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.admm.newton_admm import NewtonADMM
from repro.baselines.giant import GIANT
from repro.datasets.registry import mnist_like
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.process_engine import process_engine_info

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_process_engine.json"

WORKER_COUNTS = (1, 2, 4, 8)

SOLVERS = {
    "newton_admm": lambda: NewtonADMM(
        lam=1e-5, max_epochs=2, evaluate_every=2, record_accuracy=False
    ),
    "giant": lambda: GIANT(
        lam=1e-5, max_epochs=2, evaluate_every=2, record_accuracy=False
    ),
}

_RESULTS = {}


@pytest.fixture(scope="module")
def train():
    data, _ = mnist_like(n_train=2400, n_test=100, random_state=0)
    return data


@pytest.fixture(scope="module")
def bench_record():
    """Accumulates speedup entries; writes BENCH_process_engine.json last."""
    if _BENCH_PATH.exists():
        try:
            _RESULTS.update(json.loads(_BENCH_PATH.read_text())["entries"])
        except (ValueError, KeyError):
            pass
    yield _RESULTS
    if _RESULTS:
        info = process_engine_info()
        payload = {
            "schema": 1,
            "kind": "process_engine",
            "host": {
                "cpu_count": info["cpu_count"],
                "start_method": info["start_method"],
            },
            "note": (
                "measured fit wall-clock (pool startup excluded) of real "
                "worker processes on a fixed global problem; speedup is "
                "t(1 worker)/t(n). Entries are gated by "
                "scripts/check_bench.py only when gated=true, i.e. when the "
                "recording host had >= n_workers usable cores. See "
                "docs/performance.md."
            ),
            "entries": _RESULTS,
        }
        _BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _timed_process_fit(train, solver_factory, n_workers):
    """Measured seconds of one process-engine fit, pool startup excluded."""
    cluster = SimulatedCluster(
        train, n_workers, loss="softmax", engine="process", random_state=0
    )
    try:
        runtime = cluster.process_runtime
        runtime.ensure_started()
        start = time.perf_counter()
        trace = solver_factory().fit(cluster)
        elapsed = time.perf_counter() - start
    finally:
        cluster.close()
    return elapsed, trace


@pytest.mark.process_engine
@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
def test_measured_speedup_curve(solver_name, train, bench_record):
    factory = SOLVERS[solver_name]
    cpu_count = process_engine_info()["cpu_count"]
    times = {}
    final_ws = {}
    for n in WORKER_COUNTS:
        times[n], trace = _timed_process_fit(train, factory, n)
        final_ws[n] = trace.final_w
        assert np.isfinite(trace.records[-1].objective)

    t1 = times[1]
    for n in WORKER_COUNTS[1:]:
        speedup = t1 / times[n]
        sufficient_cores = cpu_count >= n
        entry = {
            "solver": solver_name,
            "n_workers": n,
            "baseline_seconds": t1,
            "measured_seconds": times[n],
            "speedup": speedup,
            "cpu_count": cpu_count,
            "gated": sufficient_cores,
        }
        if not sufficient_cores:
            entry["ungated_reason"] = (
                f"host has {cpu_count} usable core(s) for {n} workers — "
                "real parallel speedup is not physically available; "
                "recorded for the trajectory, not enforced"
            )
        bench_record[f"{solver_name}_x{n}"] = entry
        print(
            f"{solver_name}: {n} workers {times[n]:.3f}s vs 1 worker "
            f"{t1:.3f}s -> {speedup:.2f}x "
            f"({'gated' if sufficient_cores else 'ungated: too few cores'})"
        )

    # Scaling must not change the mathematics: every width converges to a
    # finite iterate of the same shape on the same global problem.
    dims = {w.shape for w in final_ws.values()}
    assert len(dims) == 1


@pytest.mark.process_engine
def test_acceptance_floor_when_cores_available(train, bench_record):
    """The ISSUE's >=1.5x floor at 4 workers, enforced only where 4 real
    cores exist; elsewhere the measured ratio is recorded by the curve test
    and this check documents why it cannot be asserted."""
    cpu_count = process_engine_info()["cpu_count"]
    if cpu_count < 4:
        pytest.skip(
            f"host has {cpu_count} usable core(s); the >=1.5x@4-workers "
            "acceptance floor needs 4 — entries are recorded ungated"
        )
    t1, _ = _timed_process_fit(train, SOLVERS["newton_admm"], 1)
    t4, _ = _timed_process_fit(train, SOLVERS["newton_admm"], 4)
    assert t1 / t4 >= 1.5
