"""Ablation — a master↔worker link dies and heals (fault model v2): strict
synchronous Newton-ADMM aborts with a structured PartitionError (or stalls
for the whole window) while the quorum-based asynchronous variant keeps
firing z-updates off the reachable workers; the healed worker's delayed push
is folded back in exactly once (never double-counted)."""

import math

from conftest import run_once

from repro.harness.experiments import ablation_partitions


def test_ablation_partitions(benchmark):
    result = run_once(benchmark, ablation_partitions)
    rows = {(r["method"], r["policy"]): r for r in result["rows"]}
    print("\n" + result["report"])

    nofault = rows[("newton_admm", "(no partition)")]
    raised = rows[("newton_admm", "raise")]
    stalled = rows[("newton_admm", "stall")]
    asyn = rows[("async_newton_admm", "quorum (rides through)")]

    # Strict sync cannot form a barrier across the cut: structured abort.
    assert "PartitionError" in raised["outcome"]
    assert math.isnan(raised["final_objective"])

    # The stall policy completes with identical numerics, paying the window
    # as modelled time: partitions lose time, never data.
    assert stalled["final_objective"] == nofault["final_objective"]
    assert stalled["modelled_delta_s"] > 0.0
    assert stalled["total_modelled_time_s"] > nofault["total_modelled_time_s"]

    # The quorum schedule rides through the healing partition: it reaches
    # the no-fault sync target with modelled time strictly below the
    # stalled sync run's (the acceptance criterion, on the event engine).
    assert math.isfinite(asyn["time_to_target_s"])
    assert asyn["final_objective"] <= nofault["final_objective"]
    assert asyn["time_to_target_s"] < stalled["time_to_target_s"]

    # Rejoin accounting: the healed worker's stale contribution passes the
    # staleness gate exactly once — every arrival is folded into exactly one
    # z-update, no fire folds a worker twice, and the cut worker is folded
    # again at/after the heal.
    rejoin = result["rejoin"]
    assert rejoin["max_folds_per_fire"] == 1
    assert rejoin["dropped_arrivals"] == 0  # the cut heals: nothing dropped
    assert rejoin["total_folds"] == rejoin["total_arrivals"]
    assert rejoin["post_heal_folds_of_cut_worker"] >= 1
    kinds = [e["kind"] for e in rejoin["partition_events"]]
    assert kinds.count("partition") == 1 and kinds.count("heal") == 1
