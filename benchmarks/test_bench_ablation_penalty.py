"""Ablation — ADMM penalty policies (Spectral Penalty Selection vs residual
balancing vs fixed rho), a design choice §2.2 of the paper calls out."""

import numpy as np
from conftest import run_once

from repro.harness.experiments import ablation_penalty_policies


def test_ablation_penalty_policies(benchmark):
    result = run_once(benchmark, ablation_penalty_policies)
    rows = {r["penalty"]: r for r in result["rows"]}
    print("\n" + result["report"])

    assert set(rows) == {"spectral", "residual_balancing", "fixed"}
    for row in rows.values():
        assert np.isfinite(row["final_objective"])
    # The adaptive policies should not be worse than the best non-adaptive one
    # by a large margin (all three converge on this well-behaved workload).
    best = min(r["best_objective"] for r in rows.values())
    assert rows["spectral"]["best_objective"] <= 5 * best + 0.05
