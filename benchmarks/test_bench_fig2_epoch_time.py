"""Figure 2 — average epoch time under strong and weak scaling
(Newton-ADMM vs GIANT on all four workloads)."""

import numpy as np
from conftest import run_once

from repro.harness.experiments import figure2_epoch_times


def test_figure2_epoch_times(benchmark):
    result = run_once(benchmark, figure2_epoch_times)
    rows = result["rows"]
    print("\n" + result["report"])

    # 4 datasets x 2 scalings x 4 worker counts x 2 methods
    assert len(rows) == 64

    def epoch_time(dataset, scaling, workers, method):
        for r in rows:
            if (
                r["dataset"] == dataset
                and r["scaling"] == scaling
                and r["workers"] == workers
                and r["method"] == method
            ):
                return r["avg_epoch_time_ms"]
        raise KeyError((dataset, scaling, workers, method))

    # Strong scaling: epoch time decreases substantially from 1 to 8 workers.
    for method in ("newton_admm", "giant"):
        for dataset in ("HIGGS", "MNIST", "CIFAR-10"):
            assert epoch_time(dataset, "strong", 8, method) < epoch_time(
                dataset, "strong", 1, method
            )

    # Weak scaling: epoch time stays within a small factor of the 1-worker time.
    for method in ("newton_admm", "giant"):
        for dataset in ("HIGGS", "MNIST"):
            ratio = epoch_time(dataset, "weak", 8, method) / epoch_time(
                dataset, "weak", 1, method
            )
            assert 0.4 < ratio < 2.5

    # Newton-ADMM's epoch time does not exceed GIANT's on average.
    admm_mean = np.mean([r["avg_epoch_time_ms"] for r in rows if r["method"] == "newton_admm"])
    giant_mean = np.mean([r["avg_epoch_time_ms"] for r in rows if r["method"] == "giant"])
    assert admm_mean < giant_mean
